"""Modules: the executable and shared libraries, before and after layout.

The geometry mirrors x86-64 ELF exactly where it matters to the paper:

* PLT entries are 16 bytes, so four fit in a 64-byte instruction-cache line,
  but because programs call a small, source-order-scattered subset of a
  module's imports, used entries are sparse — effectively one I-cache line
  per exercised trampoline (Section 2.2).
* GOT slots are 8 bytes (eight per data-cache line) and equally sparse.
* PLT slot 0 is the shared lazy-resolution stub (PLT0); each import's stub
  is ``jmp *GOT[n]; push n; jmp PLT0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.linker.symbols import FunctionSpec, SymbolKind

#: Bytes per PLT stub (x86-64 ELF).
PLT_ENTRY_SIZE = 16
#: Bytes per GOT slot (one 64-bit pointer).
GOT_SLOT_SIZE = 8
#: Reserved GOT slots (link_map pointer, resolver address, etc.).
GOT_RESERVED_SLOTS = 3
#: Offset within a PLT stub of the ``push n; jmp PLT0`` tail that the
#: unresolved GOT slot initially points back to.
PLT_PUSH_OFFSET = 6


@dataclass
class ModuleSpec:
    """A module as described by its (synthetic) object file.

    Attributes:
        name: module name, e.g. ``"app"`` or ``"libc.so"``.
        functions: functions defined by the module, in source order.
        imports: external symbol names, in PLT slot order.  As in real
            toolchains the order follows the source, not call frequency.
        text_align: alignment of the text segment base.
    """

    name: str
    functions: list[FunctionSpec] = field(default_factory=list)
    imports: list[str] = field(default_factory=list)
    text_align: int = 4096

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for fn in self.functions:
            if fn.name in seen:
                raise LinkError(f"module {self.name!r}: duplicate function {fn.name!r}")
            seen.add(fn.name)
        if len(set(self.imports)) != len(self.imports):
            raise LinkError(f"module {self.name!r}: duplicate import")

    @property
    def text_size(self) -> int:
        """Total text bytes of all defined functions (and ifunc variants)."""
        total = 0
        for fn in self.functions:
            total += fn.size
            if fn.kind is SymbolKind.IFUNC:
                total += fn.size * fn.ifunc_variants
        return total

    @property
    def plt_size(self) -> int:
        """PLT bytes: PLT0 plus one stub per import."""
        return PLT_ENTRY_SIZE * (1 + len(self.imports))

    @property
    def got_size(self) -> int:
        """GOT bytes: reserved slots plus one per import."""
        return GOT_SLOT_SIZE * (GOT_RESERVED_SLOTS + len(self.imports))


@dataclass
class FunctionLayout:
    """A defined function placed in memory."""

    name: str
    entry: int
    size: int
    module: str
    kind: SymbolKind = SymbolKind.FUNC
    #: Entry addresses of ifunc implementation variants (empty for FUNC).
    variant_entries: list[int] = field(default_factory=list)


class ModuleImage:
    """A module after address-space layout.

    Provides the address queries the trace engine and the experiments need:
    function entries, PLT stub addresses, GOT slot addresses, and section
    ranges (used to classify trampoline PCs and to account patched pages).
    """

    def __init__(self, spec: ModuleSpec, text_base: int, plt_base: int, got_base: int) -> None:
        self.spec = spec
        self.name = spec.name
        self.text_base = text_base
        self.plt_base = plt_base
        self.got_base = got_base

        self.functions: dict[str, FunctionLayout] = {}
        cursor = text_base
        for fn in spec.functions:
            variants: list[int] = []
            entry = cursor
            cursor += fn.size
            if fn.kind is SymbolKind.IFUNC:
                for _ in range(fn.ifunc_variants):
                    variants.append(cursor)
                    cursor += fn.size
            self.functions[fn.name] = FunctionLayout(
                fn.name, entry, fn.size, spec.name, fn.kind, variants
            )
        self.text_end = cursor

        self._plt_index = {name: i for i, name in enumerate(spec.imports)}

    # ------------------------------------------------------------- queries

    def function(self, name: str) -> FunctionLayout:
        """Layout of a defined function."""
        try:
            return self.functions[name]
        except KeyError:
            raise LinkError(f"module {self.name!r} does not define {name!r}") from None

    def imports(self) -> list[str]:
        """Imported symbol names in PLT order."""
        return list(self.spec.imports)

    def plt0_address(self) -> int:
        """Address of the shared lazy-resolution stub."""
        return self.plt_base

    def plt_entry(self, symbol: str) -> int:
        """Address of the PLT stub for an imported symbol."""
        return self.plt_base + PLT_ENTRY_SIZE * (1 + self._plt_slot(symbol))

    def plt_push_address(self, symbol: str) -> int:
        """Address of the stub's ``push n`` tail (initial GOT target)."""
        return self.plt_entry(symbol) + PLT_PUSH_OFFSET

    def got_slot(self, symbol: str) -> int:
        """Address of the GOT slot holding the symbol's resolved pointer."""
        return self.got_base + GOT_SLOT_SIZE * (GOT_RESERVED_SLOTS + self._plt_slot(symbol))

    def _plt_slot(self, symbol: str) -> int:
        try:
            return self._plt_index[symbol]
        except KeyError:
            raise LinkError(f"module {self.name!r} does not import {symbol!r}") from None

    # -------------------------------------------------------------- ranges

    @property
    def plt_range(self) -> tuple[int, int]:
        """Half-open byte range of the PLT section."""
        return (self.plt_base, self.plt_base + self.spec.plt_size)

    @property
    def got_range(self) -> tuple[int, int]:
        """Half-open byte range of the GOT section."""
        return (self.got_base, self.got_base + self.spec.got_size)

    @property
    def text_range(self) -> tuple[int, int]:
        """Half-open byte range of the text segment."""
        return (self.text_base, self.text_end)

    def contains_plt(self, addr: int) -> bool:
        """Whether ``addr`` lies inside this module's PLT."""
        lo, hi = self.plt_range
        return lo <= addr < hi
