"""Software call-site patching baseline (Sections 2.3, 4.3 and 5.5).

The paper's evaluation emulates the proposed hardware in software: a
modified dynamic linker rewrites every ``call trampoline`` site into a
direct ``call function``.  This module implements that baseline together
with its costs, which are the paper's argument *for* the hardware:

* a patched target must be within ``rel32`` reach of the site (needs the
  compat layout — breaks ASLR);
* patching writes to code pages, which must be unprotected first (a
  security hole) and which privatises shared pages in forked processes
  (copy-on-write), wasting memory;
* lazy patching works per call *site*, not per symbol, so a popular symbol
  is patched once per site rather than resolved once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LinkError
from repro.linker.dynamic import CallBinding, LinkedProgram
from repro.linker.layout import within_rel32
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PAGE_SIZE, Perm, page_of


@dataclass(frozen=True)
class PatchRecord:
    """One rewritten call site."""

    site_pc: int
    caller: str
    symbol: str
    target: int
    page: int


@dataclass
class PatchStats:
    """Aggregate patching costs.

    Attributes:
        sites_patched: distinct call sites rewritten.
        pages_touched: distinct code pages written to.
        mprotect_calls: page-permission flips performed (2 per patch:
            unprotect + reprotect).
        cow_copies: page privatisations triggered in tracked address spaces.
        out_of_reach: sites that could not be patched (>2 GB offset).
    """

    sites_patched: int = 0
    pages_touched: int = 0
    mprotect_calls: int = 0
    cow_copies: int = 0
    out_of_reach: int = 0

    @property
    def wasted_bytes_per_process(self) -> int:
        """Private bytes each patched process pays for its code copies."""
        return self.pages_touched * PAGE_SIZE


class CallSitePatcher:
    """Rewrites library call sites to direct calls in a linked program.

    The patcher operates on one or more address spaces (a prefork parent
    and its children): writes to shared code pages privatise them via the
    page model's CoW machinery, making the Section 5.5 memory overheads
    directly measurable.
    """

    def __init__(
        self,
        program: LinkedProgram,
        spaces: list[AddressSpace] | None = None,
        require_rel32: bool = True,
    ) -> None:
        self.program = program
        self.spaces = spaces if spaces is not None else []
        self.require_rel32 = require_rel32
        self.stats = PatchStats()
        self._patched: dict[int, PatchRecord] = {}
        self._pages: set[int] = set()
        self.records: list[PatchRecord] = []

    # ------------------------------------------------------------ queries

    def is_patched(self, site_pc: int) -> bool:
        """Whether the call at ``site_pc`` has been rewritten."""
        return site_pc in self._patched

    def patched_pages(self) -> set[int]:
        """Distinct code pages written to so far."""
        return set(self._pages)

    # ------------------------------------------------------------ patching

    def patch_site(self, site_pc: int, caller: str, symbol: str) -> PatchRecord | None:
        """Rewrite one call site to call its resolved target directly.

        Returns None (and counts ``out_of_reach``) when the target cannot
        be encoded as ``rel32`` and reach checking is on.  Patching an
        already-patched site is a no-op returning the existing record.
        """
        existing = self._patched.get(site_pc)
        if existing is not None:
            return existing
        binding = self.program.bind_call(caller, symbol)
        target = binding.func_addr
        if self.require_rel32 and not within_rel32(site_pc, target):
            self.stats.out_of_reach += 1
            return None
        record = PatchRecord(site_pc, caller, symbol, target, page_of(site_pc))
        self._patched[site_pc] = record
        self.records.append(record)
        self.stats.sites_patched += 1
        self.stats.mprotect_calls += 2
        if record.page not in self._pages:
            self._pages.add(record.page)
            self.stats.pages_touched += 1
        for space in self.spaces:
            self._write_code(space, site_pc)
        return record

    def patch_all_sites(self, sites: list[tuple[int, str, str]]) -> list[PatchRecord]:
        """Eagerly patch a list of (site_pc, caller, symbol) call sites.

        This is the patch-before-fork strategy: it preserves page sharing
        across later forks but forfeits lazy resolution (every site is
        resolved whether or not it ever executes).
        """
        out: list[PatchRecord] = []
        for site_pc, caller, symbol in sites:
            record = self.patch_site(site_pc, caller, symbol)
            if record is not None:
                out.append(record)
        return out

    def bound_call(self, site_pc: int, caller: str, symbol: str) -> CallBinding:
        """The binding a patched program uses at ``site_pc``.

        Patched sites call directly; unpatched sites still go via the PLT.
        """
        record = self._patched.get(site_pc)
        if record is None:
            return self.program.bind_call(caller, symbol)
        definition = self.program.symbols.lookup(symbol)
        if definition is None:
            raise LinkError(f"undefined symbol {symbol!r}")
        func = self.program.modules[definition.module].function(symbol)
        return CallBinding(
            symbol=symbol,
            caller=caller,
            via_plt=False,
            plt_addr=0,
            plt_push_addr=0,
            plt0_addr=0,
            got_addr=0,
            func_addr=record.target,
            func_size=func.size,
            first_call=False,
        )

    # ------------------------------------------------------------ internal

    def _write_code(self, space: AddressSpace, site_pc: int) -> None:
        """Unprotect, write, reprotect one code page in ``space``."""
        if not space.is_mapped(site_pc):
            return
        mapping = space.mapping_at(site_pc)
        original = mapping.perm
        faults_before = space.cow_faults
        space.protect(site_pc & ~(PAGE_SIZE - 1), PAGE_SIZE, Perm.RW | Perm.X)
        space.write(site_pc)
        space.protect(site_pc & ~(PAGE_SIZE - 1), PAGE_SIZE, original)
        self.stats.cow_copies += space.cow_faults - faults_before
