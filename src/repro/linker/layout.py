"""Address-space layout policies.

Two layouts are provided:

* :class:`ClassicLayout` — the conventional Linux x86-64 process map: the
  executable low (0x400000), heap above it, shared libraries mapped high
  (around 0x7f...), optionally randomised (ASLR).  Library text is far
  (>2 GB) from executable call sites, which is precisely why the paper's
  naive software patching approach breaks (Section 2.3).
* :class:`CompatLayout` — the evaluation layout of Section 4.3: ASLR
  disabled and all code loaded within a contiguous 2 GB window so patched
  ``call rel32`` sites can reach library functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LayoutError
from repro.linker.module import ModuleImage, ModuleSpec

#: 2 GB: the reach of an x86-64 ``call rel32`` in either direction.
REL32_REACH = 2 * 1024 * 1024 * 1024


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


@dataclass
class PlacedModule:
    """Where one module's sections landed."""

    text_base: int
    plt_base: int
    got_base: int
    end: int


class LayoutPolicy:
    """Interface: assign section base addresses to a sequence of modules."""

    def place_executable(self, spec: ModuleSpec) -> PlacedModule:
        """Place the main executable (must be called first, exactly once)."""
        raise NotImplementedError

    def place_library(self, spec: ModuleSpec) -> PlacedModule:
        """Place one shared library (called once per library, in load order)."""
        raise NotImplementedError

    def heap_base(self) -> int:
        """Base address for heap allocations, above all placed sections."""
        raise NotImplementedError


def _place_at(spec: ModuleSpec, base: int) -> PlacedModule:
    """Lay out text, then PLT, then GOT (own page, it is writable data)."""
    text_base = _align_up(base, spec.text_align)
    plt_base = _align_up(text_base + spec.text_size, 16)
    got_base = _align_up(plt_base + spec.plt_size, 4096)
    end = _align_up(got_base + spec.got_size, 4096)
    return PlacedModule(text_base, plt_base, got_base, end)


@dataclass
class ClassicLayout(LayoutPolicy):
    """Conventional process map with libraries mapped high.

    Attributes:
        aslr: randomise library bases within the mmap region.
        seed: RNG seed for ASLR placement.
    """

    aslr: bool = True
    seed: int = 0
    exe_base: int = 0x400000
    mmap_top: int = 0x7FFF_F000_0000
    _cursor: int = field(init=False, default=0)
    _rng: np.random.Generator = field(init=False, repr=False, default=None)  # type: ignore[assignment]
    _exe_end: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._cursor = self.mmap_top

    def place_executable(self, spec: ModuleSpec) -> PlacedModule:
        """Place the executable at the traditional low text base."""
        placed = _place_at(spec, self.exe_base)
        self._exe_end = placed.end
        return placed

    def place_library(self, spec: ModuleSpec) -> PlacedModule:
        """Map a library at the top of the mmap region, growing downward."""
        gap = 0
        if self.aslr:
            # Page-granular randomisation of up to 16 MB between libraries,
            # matching mmap_rnd-style entropy at the scale that matters here.
            gap = int(self._rng.integers(0, 4096)) * 4096
        size_estimate = _place_at(spec, 0).end + 4096
        base = self._cursor - gap - size_estimate - 2 * spec.text_align
        placed = _place_at(spec, base)
        if placed.end > self._cursor:
            raise LayoutError(f"library {spec.name!r} overlaps previous mapping")
        if placed.text_base <= self._exe_end:
            raise LayoutError("mmap region exhausted; too many libraries")
        self._cursor = placed.text_base - 4096  # guard page
        return placed

    def heap_base(self) -> int:
        """Heap grows upward from just above the executable."""
        return _align_up(self._exe_end + (1 << 20), 4096)


@dataclass
class CompatLayout(LayoutPolicy):
    """Section 4.3 evaluation layout: everything within one 2 GB window.

    ASLR is disabled and libraries are packed right above the executable so
    every call site can reach every function with a ``rel32`` offset.
    """

    exe_base: int = 0x400000
    _cursor: int = field(init=False, default=0)
    _window_end: int = field(init=False, default=0)

    def place_executable(self, spec: ModuleSpec) -> PlacedModule:
        """Place the executable and open the 2 GB reachability window."""
        placed = _place_at(spec, self.exe_base)
        self._cursor = placed.end
        self._window_end = self.exe_base + REL32_REACH
        return placed

    def place_library(self, spec: ModuleSpec) -> PlacedModule:
        """Pack the library directly above the previous module."""
        placed = _place_at(spec, self._cursor + 4096)
        if placed.end > self._window_end:
            raise LayoutError(
                f"library {spec.name!r} does not fit in the 2 GB compat window"
            )
        self._cursor = placed.end
        return placed

    def heap_base(self) -> int:
        """The heap sits above all code in the compat layout."""
        return _align_up(self._cursor + (1 << 20), 4096)


def within_rel32(call_site: int, target: int) -> bool:
    """Whether ``target`` is reachable from ``call_site`` via ``call rel32``."""
    return abs(target - (call_site + 5)) < REL32_REACH


def classify_plt_pc(modules: dict[str, ModuleImage], pc: int) -> str | None:
    """Name of the module whose PLT contains ``pc``, or None."""
    for image in modules.values():
        if image.contains_plt(pc):
            return image.name
    return None
