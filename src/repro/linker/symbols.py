"""Symbols and function descriptions for the ELF-like linking substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SymbolKind(enum.Enum):
    """Kind of a defined symbol."""

    #: Ordinary function.
    FUNC = "func"
    #: GNU indirect function (Section 2.4.1): the address is chosen at
    #: resolution time by a resolver from several candidate implementations.
    IFUNC = "ifunc"


@dataclass(frozen=True)
class FunctionSpec:
    """A function to be defined in a module.

    Attributes:
        name: global symbol name (must be unique within the module).
        size: text bytes occupied by the function body.
        kind: plain function or GNU ifunc.
        ifunc_variants: for ifuncs, the number of alternative
            implementations laid out after the resolver; the dynamic
            linker's resolution step picks one.
    """

    name: str
    size: int = 256
    kind: SymbolKind = SymbolKind.FUNC
    ifunc_variants: int = 1

    def __post_init__(self) -> None:
        if self.size < 16:
            raise ValueError(f"function {self.name!r} too small: {self.size}")
        if self.kind is SymbolKind.IFUNC and self.ifunc_variants < 1:
            raise ValueError(f"ifunc {self.name!r} needs at least one variant")


@dataclass(frozen=True)
class Symbol:
    """A resolved global symbol: its defining module and entry address."""

    name: str
    module: str
    address: int
    kind: SymbolKind = SymbolKind.FUNC


@dataclass
class SymbolTable:
    """Global symbol table with ELF-style resolution order.

    Symbols are resolved in module load order (executable first, then
    libraries in the order they were listed), so an earlier definition
    interposes on later ones — the semantics LD_PRELOAD relies on.
    """

    _by_name: dict[str, Symbol] = field(default_factory=dict)

    def define(self, symbol: Symbol) -> bool:
        """Add a definition; returns False if an earlier module interposed."""
        if symbol.name in self._by_name:
            return False
        self._by_name[symbol.name] = symbol
        return True

    def lookup(self, name: str) -> Symbol | None:
        """Find the winning definition of ``name``, or None."""
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> list[str]:
        """All defined symbol names."""
        return list(self._by_name)
