"""The dynamic linker: module mapping, symbol resolution, lazy binding.

This models the ld.so behaviour the paper depends on:

* libraries are mapped into the process with their text shared read-only
  between all processes (one physical copy system-wide);
* every import gets a PLT stub and a GOT slot; GOT slots initially point
  back into the stub (``push n; jmp PLT0``) so the first call routes through
  the resolver;
* the resolver looks the symbol up in load order, writes the real address
  into the GOT slot (**a store — the event the mechanism's Bloom filter
  watches**), and jumps to the function;
* subsequent calls execute only the trampoline's ``jmp *GOT[n]``.

GNU ifuncs (Section 2.4.1) resolve through an extra indirection: the
resolver calls the ifunc's selector, which picks an implementation variant
based on hardware capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.linker.layout import ClassicLayout, LayoutPolicy
from repro.linker.module import ModuleImage, ModuleSpec
from repro.linker.symbols import Symbol, SymbolKind, SymbolTable
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PAGE_SIZE, Frame, Perm, PhysicalMemory, pages_spanned

#: Instructions charged for one pass through the lazy resolver
#: (_dl_runtime_resolve + _dl_fixup hash lookup), calibrated to glibc.
RESOLVER_INSTRUCTIONS = 760
#: Data loads performed by one resolver pass (symbol hash chains, link maps).
RESOLVER_LOADS = 48
#: Extra instructions for running an ifunc selector.
IFUNC_SELECTOR_INSTRUCTIONS = 120


@dataclass(frozen=True)
class CallBinding:
    """Everything the trace engine needs to emit one library call.

    Attributes:
        symbol: the called symbol name.
        caller: the module making the call.
        via_plt: True for dynamic linking, False for direct (static/patched).
        plt_addr: address of the caller's PLT stub for this symbol.
        plt_push_addr: address of the stub's lazy tail (first-call target).
        plt0_addr: the module's shared resolver stub.
        got_addr: address of the caller's GOT slot for this symbol.
        func_addr: resolved entry address of the function.
        func_size: text size of the function body.
        first_call: True when this call triggers lazy resolution.
        resolver_instructions: instruction cost of resolution (0 otherwise).
        resolver_loads: data loads performed by resolution.
    """

    symbol: str
    caller: str
    via_plt: bool
    plt_addr: int
    plt_push_addr: int
    plt0_addr: int
    got_addr: int
    func_addr: int
    func_size: int
    first_call: bool
    resolver_instructions: int = 0
    resolver_loads: int = 0


@dataclass
class _GotSlot:
    """Runtime state of one GOT slot."""

    resolved: bool = False
    value: int = 0


class LinkedProgram:
    """A fully mapped process image with live GOT state.

    The trace engine drives this object: :meth:`bind_call` performs (and
    records) lazy resolution exactly once per (module, symbol) pair, the
    way ld.so does.
    """

    def __init__(
        self,
        modules: dict[str, ModuleImage],
        symbols: SymbolTable,
        heap_base: int,
        load_order: list[str],
        hwcap_level: int = 0,
    ) -> None:
        self.modules = modules
        self.symbols = symbols
        self.heap_base = heap_base
        self.load_order = load_order
        self.hwcap_level = hwcap_level
        self._got: dict[tuple[str, str], _GotSlot] = {}
        for name, image in modules.items():
            for sym in image.imports():
                self._got[(name, sym)] = _GotSlot()
        #: (module, symbol) pairs resolved so far, in resolution order.
        self.resolution_log: list[tuple[str, str]] = []
        #: Optional observability tracer (see :meth:`attach_tracer`).
        self.tracer = None
        #: Monotonic counter bumped by every operation that can change an
        #: *already resolved* binding (GOT rewrite, ifunc reselection,
        #: dlclose) or the module map (dlopen).  The batch-emitting engine
        #: path caches per-binding warm-call templates keyed on this epoch
        #: and drops them all whenever it moves.
        self.binding_epoch = 0

    def attach_tracer(self, tracer) -> None:
        """Emit linker activity (resolver runs, GOT writes, dlclose) as
        instant events on an :class:`repro.obs.tracer.Tracer`."""
        self.tracer = tracer

    # ---------------------------------------------------------- resolution

    def module(self, name: str) -> ModuleImage:
        """The image of a loaded module."""
        try:
            return self.modules[name]
        except KeyError:
            raise LinkError(f"module {name!r} is not loaded") from None

    def _resolve_symbol(self, symbol: str) -> tuple[Symbol, int, int]:
        """Find a definition; returns (symbol, entry, extra selector cost)."""
        definition = self.symbols.lookup(symbol)
        if definition is None:
            raise LinkError(f"undefined symbol {symbol!r}")
        extra = 0
        entry = definition.address
        if definition.kind is SymbolKind.IFUNC:
            layout = self.modules[definition.module].function(symbol)
            variants = layout.variant_entries
            entry = variants[self.hwcap_level % len(variants)]
            extra = IFUNC_SELECTOR_INSTRUCTIONS
        return definition, entry, extra

    def bind_call(self, caller: str, symbol: str) -> CallBinding:
        """Bind one dynamic library call from ``caller`` to ``symbol``.

        The first call per (caller, symbol) runs the lazy resolver and
        writes the GOT slot; later calls find the slot resolved.
        """
        image = self.module(caller)
        slot = self._got.get((caller, symbol))
        if slot is None:
            raise LinkError(f"module {caller!r} does not import {symbol!r}")
        definition, entry, selector_cost = self._resolve_symbol(symbol)
        func_size = self.modules[definition.module].function(symbol).size
        if slot.resolved:
            return CallBinding(
                symbol,
                caller,
                True,
                image.plt_entry(symbol),
                image.plt_push_address(symbol),
                image.plt0_address(),
                image.got_slot(symbol),
                slot.value,
                func_size,
                first_call=False,
            )
        slot.resolved = True
        slot.value = entry
        self.resolution_log.append((caller, symbol))
        if self.tracer is not None:
            self.tracer.instant(
                f"resolve {caller}:{symbol}",
                category="linker",
                caller=caller,
                symbol=symbol,
                got_addr=hex(image.got_slot(symbol)),
                target=hex(entry),
                ifunc=definition.kind is SymbolKind.IFUNC,
            )
        return CallBinding(
            symbol,
            caller,
            True,
            image.plt_entry(symbol),
            image.plt_push_address(symbol),
            image.plt0_address(),
            image.got_slot(symbol),
            entry,
            func_size,
            first_call=True,
            resolver_instructions=RESOLVER_INSTRUCTIONS + selector_cost,
            resolver_loads=RESOLVER_LOADS,
        )

    def bind_now(self) -> int:
        """Eagerly resolve every import (LD_BIND_NOW); returns slot count."""
        count = 0
        for (caller, symbol), slot in self._got.items():
            if not slot.resolved:
                _, entry, _ = self._resolve_symbol(symbol)
                slot.resolved = True
                slot.value = entry
                self.resolution_log.append((caller, symbol))
                count += 1
        if self.tracer is not None:
            self.tracer.instant("bind_now", category="linker", slots_bound=count)
        return count

    def got_value(self, caller: str, symbol: str) -> int | None:
        """Current GOT slot contents (None while unresolved)."""
        slot = self._got[(caller, symbol)]
        return slot.value if slot.resolved else None

    def is_resolved(self, caller: str, symbol: str) -> bool:
        """Whether the (caller, symbol) GOT slot has been populated."""
        return self._got[(caller, symbol)].resolved

    def resolved_count(self) -> int:
        """Number of populated GOT slots."""
        return sum(1 for s in self._got.values() if s.resolved)

    # ------------------------------------------------------------- rewrite

    def rewrite_got(self, caller: str, symbol: str, new_value: int) -> int:
        """Overwrite a *resolved* GOT slot in place; returns the slot address.

        Models ld.so rewriting a live slot at runtime: a library unloaded
        and re-loaded at a new base, an ifunc selector changing its answer,
        or interposition after a ``dlopen``.  The caller is responsible for
        emitting the matching store event — that store is what the
        hardware's Bloom filter (or the §3.4 software contract) must see.
        """
        slot = self._got.get((caller, symbol))
        if slot is None:
            raise LinkError(f"module {caller!r} does not import {symbol!r}")
        if not slot.resolved:
            raise LinkError(f"GOT slot {caller!r}:{symbol!r} is not resolved")
        slot.value = new_value
        self.binding_epoch += 1
        got_addr = self.modules[caller].got_slot(symbol)
        if self.tracer is not None:
            self.tracer.instant(
                f"got_rewrite {caller}:{symbol}",
                category="linker",
                caller=caller,
                symbol=symbol,
                got_addr=hex(got_addr),
                new_value=hex(new_value),
            )
        return got_addr

    def reselect_ifuncs(self, hwcap_level: int) -> list[tuple[str, str, int, int]]:
        """Re-run every resolved ifunc selector under a new hwcap level.

        Returns the (caller, symbol, got_addr, new_entry) rewrites for
        slots whose winning variant changed — each is a GOT write the
        hardware must observe.
        """
        self.hwcap_level = hwcap_level
        self.binding_epoch += 1
        rewrites: list[tuple[str, str, int, int]] = []
        for (caller, symbol), slot in self._got.items():
            if not slot.resolved:
                continue
            definition = self.symbols.lookup(symbol)
            if definition is None or definition.kind is not SymbolKind.IFUNC:
                continue
            _, entry, _ = self._resolve_symbol(symbol)
            if entry != slot.value:
                slot.value = entry
                rewrites.append((caller, symbol, self.modules[caller].got_slot(symbol), entry))
        if self.tracer is not None:
            self.tracer.instant(
                "ifunc_reselect",
                category="linker",
                hwcap_level=hwcap_level,
                rewrites=len(rewrites),
            )
        return rewrites

    # -------------------------------------------------------------- unload

    def unload_library(self, name: str) -> list[tuple[str, str, int]]:
        """Unload a library (dlclose): reset every GOT slot that points into
        it and drop its symbols.

        Returns the (module, symbol, got_addr) triples that were reset —
        these are GOT *writes* that the hardware's Bloom filter must catch.
        """
        if name not in self.modules:
            raise LinkError(f"module {name!r} is not loaded")
        self.binding_epoch += 1
        victim = self.modules[name]
        lo, hi = victim.text_range
        reset: list[tuple[str, str, int]] = []
        for (caller, symbol), slot in self._got.items():
            if slot.resolved and lo <= slot.value < hi:
                slot.resolved = False
                slot.value = 0
                reset.append((caller, symbol, self.modules[caller].got_slot(symbol)))
        for sym_name in list(self.symbols._by_name):
            if self.symbols._by_name[sym_name].module == name:
                del self.symbols._by_name[sym_name]
        del self.modules[name]
        self.load_order.remove(name)
        if self.tracer is not None:
            self.tracer.instant(
                f"dlclose {name}",
                category="linker",
                library=name,
                slots_reset=len(reset),
            )
        return reset

    # ------------------------------------------------------------ geometry

    def plt_ranges(self) -> list[tuple[int, int]]:
        """PLT section ranges of all loaded modules."""
        return [image.plt_range for image in self.modules.values()]

    def trampoline_module(self, pc: int) -> str | None:
        """Module whose PLT contains ``pc``, or None."""
        for image in self.modules.values():
            if image.contains_plt(pc):
                return image.name
        return None


@dataclass
class _FileCacheEntry:
    """Shared page frames backing a module's file, like the OS page cache."""

    code_frames: list[Frame] = field(default_factory=list)
    data_frames: list[Frame] = field(default_factory=list)


class DynamicLinker:
    """Maps modules into address spaces and constructs linked programs.

    One linker instance models one machine: its file cache makes library
    text frames shared across every process that maps the same module,
    which is the memory-conservation property of dynamic linking that the
    paper's Section 5.5 accounting depends on.
    """

    def __init__(self, phys: PhysicalMemory | None = None) -> None:
        self.phys = phys if phys is not None else PhysicalMemory()
        self._file_cache: dict[str, _FileCacheEntry] = {}

    def link(
        self,
        exe: ModuleSpec,
        libraries: list[ModuleSpec],
        layout: LayoutPolicy | None = None,
        address_space: AddressSpace | None = None,
        hwcap_level: int = 0,
    ) -> LinkedProgram:
        """Map the executable and its libraries; return the live program.

        When ``address_space`` is given, pages are actually mapped into it
        (text shared, GOT copy-on-write private), enabling fork/CoW
        experiments; otherwise only addresses are computed.
        """
        layout = layout if layout is not None else ClassicLayout(aslr=False)
        names = [exe.name] + [lib.name for lib in libraries]
        if len(set(names)) != len(names):
            raise LinkError("duplicate module names")

        modules: dict[str, ModuleImage] = {}
        symbols = SymbolTable()
        placements = {exe.name: layout.place_executable(exe)}
        for lib in libraries:
            placements[lib.name] = layout.place_library(lib)

        for spec in [exe] + libraries:
            placed = placements[spec.name]
            image = ModuleImage(spec, placed.text_base, placed.plt_base, placed.got_base)
            modules[spec.name] = image
            for fn in spec.functions:
                symbols.define(
                    Symbol(fn.name, spec.name, image.function(fn.name).entry, fn.kind)
                )
            if address_space is not None:
                self._map_module(address_space, spec, image)

        # Check every import resolves before handing the program out.
        for spec in [exe] + libraries:
            for sym in spec.imports:
                if symbols.lookup(sym) is None:
                    raise LinkError(f"module {spec.name!r}: undefined import {sym!r}")

        return LinkedProgram(modules, symbols, layout.heap_base(), names, hwcap_level)

    def dlopen(
        self,
        program: LinkedProgram,
        spec: ModuleSpec,
        layout: LayoutPolicy,
        address_space: AddressSpace | None = None,
    ) -> ModuleImage:
        """Load a library into a running program (``dlopen`` semantics).

        The new module's symbols join the global table (without
        interposing on existing winners), its imports get fresh GOT slots,
        and — unlike the software patching baseline — nothing about
        already-resolved calls changes: the proposed hardware supports
        dynamic loading implicitly.
        """
        if spec.name in program.modules:
            raise LinkError(f"module {spec.name!r} is already loaded")
        placed = layout.place_library(spec)
        image = ModuleImage(spec, placed.text_base, placed.plt_base, placed.got_base)
        for fn in spec.functions:
            program.symbols.define(
                Symbol(fn.name, spec.name, image.function(fn.name).entry, fn.kind)
            )
        for sym in spec.imports:
            if program.symbols.lookup(sym) is None:
                raise LinkError(f"dlopen {spec.name!r}: undefined import {sym!r}")
        program.modules[spec.name] = image
        program.load_order.append(spec.name)
        program.binding_epoch += 1
        for sym in spec.imports:
            program._got[(spec.name, sym)] = _GotSlot()
        if address_space is not None:
            self._map_module(address_space, spec, image)
        return image

    def _map_module(self, space: AddressSpace, spec: ModuleSpec, image: ModuleImage) -> None:
        """Map text+PLT (shared RX) and GOT (private CoW RW) pages."""
        entry = self._file_cache.get(spec.name)
        code_lo = image.text_base
        code_hi = image.plt_range[1]
        code_pages = len(pages_spanned(code_lo, code_hi - code_lo))
        got_lo, got_hi = image.got_range
        got_pages = len(pages_spanned(got_lo, got_hi - got_lo))
        if entry is None:
            entry = _FileCacheEntry(
                code_frames=[self.phys.allocate(f"{spec.name}:text") for _ in range(code_pages)],
                data_frames=[self.phys.allocate(f"{spec.name}:got") for _ in range(got_pages)],
            )
            self._file_cache[spec.name] = entry
        space.map_shared_frames(code_lo & ~(PAGE_SIZE - 1), entry.code_frames, Perm.RX, cow=True)
        space.map_shared_frames(got_lo & ~(PAGE_SIZE - 1), entry.data_frames, Perm.RW, cow=True)
