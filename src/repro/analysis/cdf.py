"""Cumulative distribution functions for latency plots (Figures 6 and 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class CDF:
    """An empirical CDF: sorted values and cumulative fractions."""

    values: tuple[float, ...]
    fractions: tuple[float, ...]

    @staticmethod
    def of(samples) -> "CDF":
        """Build an empirical CDF from raw samples."""
        arr = np.sort(np.asarray(list(samples), dtype=np.float64))
        if arr.size == 0:
            raise ExperimentError("cannot build a CDF from an empty sample")
        fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
        return CDF(tuple(map(float, arr)), tuple(map(float, fractions)))

    def percentile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0-100)."""
        if not 0 < q <= 100:
            raise ExperimentError(f"percentile {q} out of range")
        index = int(np.searchsorted(np.asarray(self.fractions), q / 100.0))
        index = min(index, len(self.values) - 1)
        return self.values[index]

    def fraction_below(self, value: float) -> float:
        """Fraction of requests served within ``value``."""
        index = int(np.searchsorted(np.asarray(self.values), value, side="right"))
        return index / len(self.values)

    def sampled(self, n_points: int = 50) -> list[tuple[float, float]]:
        """Evenly spaced (value, fraction) points for plotting/printing."""
        if n_points < 2:
            raise ExperimentError("need at least 2 points")
        idx = np.linspace(0, len(self.values) - 1, n_points).astype(int)
        return [(self.values[i], self.fractions[i]) for i in idx]


def dominates(faster: CDF, slower: CDF, quantiles=(50, 75, 90, 95)) -> bool:
    """True when ``faster`` is at or below ``slower`` at every quantile."""
    return all(faster.percentile(q) <= slower.percentile(q) for q in quantiles)
