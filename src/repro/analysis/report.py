"""Structured experiment outputs: tables and series with paper references.

Every experiment returns a :class:`Report` so the benchmark harness can
print the same rows the paper does and EXPERIMENTS.md can record
paper-vs-measured values mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Table:
    """A printable table with named columns."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"table {self.title!r}: expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """ASCII-render the table."""
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


@dataclass
class Series:
    """A named (x, y) series, e.g. one CDF curve or Figure 5 line."""

    name: str
    x: list[float]
    y: list[float]

    def render(self, max_points: int = 12) -> str:
        """Compact textual rendering of the series."""
        step = max(1, len(self.x) // max_points)
        pts = ", ".join(
            f"({_fmt(a)}, {_fmt(b)})" for a, b in list(zip(self.x, self.y))[::step]
        )
        return f"{self.name}: {pts}"


@dataclass
class Report:
    """One experiment's full output.

    Attributes:
        experiment_id: registry key, e.g. ``"table4"``.
        description: what the paper artefact shows.
        tables: printable tables (paper-style rows).
        series: plottable series (figures).
        shape_checks: named boolean assertions that the *shape* of the
            paper's result holds (who wins, orderings, crossovers).
        notes: free-form commentary (scaling caveats, substitutions).
    """

    experiment_id: str
    description: str
    tables: list[Table] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    shape_checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full textual rendering for the benchmark harness."""
        parts = [f"=== {self.experiment_id}: {self.description} ==="]
        for table in self.tables:
            parts.append(table.render())
        for series in self.series:
            parts.append(series.render())
        if self.shape_checks:
            parts.append("shape checks:")
            for name, ok in self.shape_checks.items():
                parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    @property
    def all_shapes_hold(self) -> bool:
        """True when every shape check passed."""
        return all(self.shape_checks.values())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
