"""Histogram utilities for the Memcached processing-time plots (Figure 7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class Histogram:
    """A binned distribution of request processing times.

    Attributes:
        edges: bin edges (len = bins + 1).
        counts: per-bin counts.
    """

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @staticmethod
    def of(samples, bins: int = 40, lo: float | None = None, hi: float | None = None) -> "Histogram":
        """Histogram ``samples`` into ``bins`` equal-width buckets."""
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            raise ExperimentError("cannot histogram an empty sample")
        lo = float(arr.min()) if lo is None else lo
        hi = float(arr.max()) if hi is None else hi
        if hi <= lo:
            hi = lo + 1.0
        counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
        return Histogram(tuple(map(float, edges)), tuple(map(int, counts)))

    @property
    def total(self) -> int:
        """Total samples binned."""
        return int(sum(self.counts))

    def fractions(self) -> list[float]:
        """Per-bin fraction of all samples (the paper's y-axis)."""
        total = self.total or 1
        return [c / total for c in self.counts]

    def peak_bin(self) -> int:
        """Index of the most populated bin."""
        return int(np.argmax(np.asarray(self.counts)))

    def peak_value(self) -> float:
        """Centre of the most populated bin — Figure 7's 'peak position'."""
        i = self.peak_bin()
        return (self.edges[i] + self.edges[i + 1]) / 2.0

    def mode_shift(self, other: "Histogram") -> float:
        """How far this histogram's peak sits left of ``other``'s (>0 means
        this distribution is faster)."""
        return other.peak_value() - self.peak_value()
