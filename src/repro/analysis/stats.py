"""Small statistics helpers used by the experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


def percentile(samples, q: float) -> float:
    """The ``q``-th percentile (0-100) of a sample list."""
    if len(samples) == 0:
        raise ExperimentError("cannot take a percentile of an empty sample")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def mean(samples) -> float:
    """Arithmetic mean."""
    if len(samples) == 0:
        raise ExperimentError("cannot average an empty sample")
    return float(np.mean(np.asarray(samples, dtype=np.float64)))


def geomean(values) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0 or np.any(arr <= 0):
        raise ExperimentError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def speedup(base: float, enhanced: float) -> float:
    """base/enhanced — >1 means the enhanced system is faster."""
    if enhanced <= 0:
        raise ExperimentError("enhanced measurement must be positive")
    return base / enhanced


def improvement_percent(base: float, enhanced: float) -> float:
    """Relative reduction of a cost metric, in percent."""
    if base == 0:
        return 0.0
    return 100.0 * (base - enhanced) / base


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample (microseconds etc.)."""

    n: int
    mean: float
    p50: float
    p75: float
    p90: float
    p95: float
    p99: float

    @staticmethod
    def of(samples) -> "Summary":
        """Build a summary from raw samples."""
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            raise ExperimentError("cannot summarise an empty sample")
        p = np.percentile(arr, [50, 75, 90, 95, 99])
        return Summary(int(arr.size), float(arr.mean()), *map(float, p))
