"""Analysis utilities: statistics, CDFs, histograms and reports."""

from repro.analysis.cdf import CDF, dominates
from repro.analysis.histogram import Histogram
from repro.analysis.report import Report, Series, Table
from repro.analysis.stats import (
    Summary,
    geomean,
    improvement_percent,
    mean,
    percentile,
    speedup,
)

__all__ = [
    "CDF",
    "Histogram",
    "Report",
    "Series",
    "Summary",
    "Table",
    "dominates",
    "geomean",
    "improvement_percent",
    "mean",
    "percentile",
    "speedup",
]
