"""Integration tests: linker + engine + workloads + CPU + mechanism together."""

from __future__ import annotations

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.experiments.runner import run_pair, run_workload
from repro.experiments.scale import Scale
from repro.trace.engine import LinkMode
from repro.uarch import CPU
from repro.workloads import Workload, memcached
from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile

#: Tiny preset so integration tests stay fast.
TINY = Scale(
    "tiny",
    {"apache": (2, 6), "memcached": (10, 50), "mysql": (2, 6), "firefox": (1, 3)},
)


def tiny_workload_config(**overrides) -> WorkloadConfig:
    defaults = dict(
        name="tiny",
        libraries=(
            LibrarySpec("liba.so", n_functions=60, import_pairs=5),
            LibrarySpec("libb.so", n_functions=60),
        ),
        request_classes=(
            RequestClass("R", segments=30, segment_instr=40, call_prob=0.8,
                         phase_len=10, phase_set=2, app_phase_fns=4),
        ),
        app_functions=40,
        app_import_pairs=15,
        profile=PopularityProfile(core_size=5, core_mass=0.7, zipf_s=1.0),
        plt_sparsity=3,
        seed=7,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestBaseVsEnhanced:
    def _pair(self, n_requests=30):
        results = []
        for mech in (None, TrampolineSkipMechanism()):
            wl = Workload(tiny_workload_config())
            cpu = CPU(mechanism=mech)
            cpu.run(wl.startup_trace())
            snap = cpu.finalize().copy()
            cpu.run(wl.trace(n_requests, include_marks=False))
            results.append(cpu.finalize().delta(snap))
        return results

    def test_enhanced_executes_fewer_instructions(self):
        base, enh = self._pair()
        assert enh.instructions < base.instructions
        # Architectural work (everything but trampolines) is identical.
        saved = base.instructions - enh.instructions
        assert saved == enh.trampolines_skipped

    def test_enhanced_is_faster(self):
        base, enh = self._pair()
        assert enh.cycles < base.cycles

    def test_enhanced_reduces_got_loads(self):
        base, enh = self._pair()
        assert enh.got_loads < base.got_loads
        assert base.got_loads - enh.got_loads == enh.trampolines_skipped

    def test_trampoline_totals_conserved(self):
        base, enh = self._pair()
        assert (
            enh.trampolines_executed + enh.trampolines_skipped
            == base.trampolines_executed
        )

    def test_mispredictions_stay_close(self):
        # Section 3.3: the mechanism introduces no *steady-state*
        # mispredictions; transient relearns keep the totals within a
        # small envelope.
        base, enh = self._pair()
        assert enh.branch_mispredictions <= base.branch_mispredictions * 1.05 + 10

    def test_branch_count_drops_by_skips(self):
        base, enh = self._pair()
        assert base.branches - enh.branches == enh.trampolines_skipped


class TestUnsafeSkipNeverWithBloom:
    def test_full_workload_has_zero_unsafe_skips(self):
        wl = Workload(tiny_workload_config())
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        cpu.run(wl.trace(40, include_marks=False))
        assert mech.stats.unsafe_skips == 0

    def test_explicit_invalidate_mode_also_safe_with_linker_cooperation(self):
        wl = Workload(tiny_workload_config())
        mech = TrampolineSkipMechanism(MechanismConfig(use_bloom=False))
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        cpu.run(wl.trace(40, include_marks=False))
        assert mech.stats.unsafe_skips == 0
        assert mech.stats.explicit_flushes > 0  # the linker invalidated


class TestLinkModesAgree:
    def test_static_matches_enhanced_steady_state_instruction_count(self):
        # The whole premise: skipping trampolines gives dynamic linking the
        # instruction stream of static linking (modulo startup).
        dyn = Workload(tiny_workload_config())
        cpu = CPU(mechanism=TrampolineSkipMechanism())
        cpu.run(dyn.startup_trace())
        snap = cpu.finalize().copy()
        cpu.run(dyn.trace(30, include_marks=False))
        enh = cpu.finalize().delta(snap)

        static = Workload(tiny_workload_config(), mode=LinkMode.STATIC)
        scpu = CPU()
        scpu.run(static.trace(30, include_marks=False))
        stat = scpu.finalize()

        # Residual trampolines (relearns) are the only difference.
        assert enh.instructions - stat.instructions == enh.trampolines_executed

    def test_patched_mode_runs_and_patches(self):
        wl = Workload(tiny_workload_config(), mode=LinkMode.PATCHED)
        cpu = CPU()
        cpu.run(wl.trace(10, include_marks=False))
        assert wl.patcher is not None
        assert wl.patcher.stats.sites_patched > 0
        # Already-patched sites execute no trampolines; only sites making
        # their *first* appearance in the second window still take the
        # one-time PLT+patch path.
        snap = cpu.finalize().copy()
        patched_before = wl.patcher.stats.sites_patched
        cpu.run(wl.trace(10, include_marks=False, start_id=10))
        window = cpu.finalize().delta(snap)
        newly_patched = wl.patcher.stats.sites_patched - patched_before
        assert window.trampolines_executed == newly_patched


class TestRunner:
    def test_run_workload_pairs_marks(self):
        result = run_workload(memcached.config(), None, 2, 10)
        assert len(result.requests) == 10
        assert all(r.cycles > 0 and r.instructions > 0 for r in result.requests)

    def test_request_classes_observed(self):
        result = run_workload(memcached.config(), None, 2, 30)
        assert "GET" in result.class_names()

    def test_latency_noise_uses_common_random_numbers(self):
        base = run_workload(memcached.config(), None, 2, 10)
        enh = run_workload(
            memcached.config(), TrampolineSkipMechanism(), 2, 10
        )
        lb = base.latencies_us(noise_sigma=0.1)
        le = enh.latencies_us(noise_sigma=0.1)
        # Same request ids -> same noise draws -> ratios reflect only the
        # microarchitectural delta (all within a tight band).
        ratios = [e / b for b, e in zip(lb, le)]
        assert max(ratios) - min(ratios) < 0.05

    def test_run_pair_produces_identical_workloads(self):
        base, enh = run_pair("memcached", TINY)
        assert base.counters.instructions >= enh.counters.instructions
        assert [r.request_id for r in base.requests] == [
            r.request_id for r in enh.requests
        ]

    def test_skip_rate_property(self):
        _, enh = run_pair("memcached", TINY)
        assert 0.0 < enh.skip_rate <= 1.0


class TestContextSwitchIntegration:
    def test_switches_degrade_but_do_not_break(self):
        noisy = tiny_workload_config(context_switch_interval=20_000)
        wl = Workload(noisy)
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        cpu.run(wl.trace(30, include_marks=False))
        c = cpu.finalize()
        assert c.context_switches > 0
        assert mech.stats.context_flushes >= c.context_switches
        assert c.trampolines_skipped > 0  # still recovers between switches
        assert mech.stats.unsafe_skips == 0
