"""Tests for the execution engine's three linking modes."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.isa.kinds import EventKind
from repro.linker import CallSitePatcher, CompatLayout, DynamicLinker, StaticLinker
from repro.trace.engine import (
    PATCH_OVERHEAD_INSTRUCTIONS,
    ExecutionEngine,
    LinkMode,
)
from tests.conftest import tiny_specs


def _dynamic():
    exe, libs = tiny_specs()
    program = DynamicLinker().link(exe, libs)
    return program, ExecutionEngine(program)


class TestDynamicMode:
    def test_steady_call_shape(self):
        program, engine = _dynamic()
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)  # first call resolves
        events, binding = engine.call_events("app", "printf", site)
        assert [e.kind for e in events] == [EventKind.CALL_DIRECT, EventKind.JMP_INDIRECT]
        call, tramp = events
        assert call.target == binding.plt_addr
        assert tramp.pc == binding.plt_addr
        assert tramp.mem_addr == binding.got_addr
        assert tramp.target == binding.func_addr
        assert tramp.tag == "plt"

    def test_first_call_routes_through_resolver(self):
        program, engine = _dynamic()
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        kinds = [e.kind for e in events]
        assert EventKind.STORE in kinds  # the GOT write
        stores = [e for e in events if e.kind == EventKind.STORE]
        assert stores[0].mem_addr == binding.got_addr
        assert stores[0].tag == "got-store"
        # The trampoline initially jumps back into the stub (lazy target).
        tramp = events[1]
        assert tramp.target == binding.plt_push_addr

    def test_first_call_cost_exceeds_steady(self):
        program, engine = _dynamic()
        site = program.module("app").function("main").entry + 32
        first, _ = engine.call_events("app", "printf", site)
        steady, _ = engine.call_events("app", "printf", site)
        assert sum(e.n_instr for e in first) > 50 * sum(e.n_instr for e in steady)

    def test_return_events_target_after_site(self):
        program, engine = _dynamic()
        site = program.module("app").function("main").entry + 32
        _, binding = engine.call_events("app", "printf", site)
        (ret_ev,) = engine.return_events(binding, site)
        assert ret_ev.target == site + 5

    def test_resolutions_counted(self):
        program, engine = _dynamic()
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)
        engine.call_events("app", "printf", site)
        engine.call_events("app", "memcpy", site + 16)
        assert engine.resolutions_emitted == 2
        assert engine.calls_emitted == 3


class TestStaticMode:
    def test_static_emits_single_direct_call(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        engine = ExecutionEngine(program, LinkMode.STATIC)
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        assert len(events) == 1
        assert events[0].kind is EventKind.CALL_DIRECT
        assert events[0].target == binding.func_addr

    def test_static_mode_requires_static_program(self):
        program, _ = _dynamic()
        with pytest.raises(TraceError):
            ExecutionEngine(program, LinkMode.STATIC)


class TestPatchedMode:
    def _patched(self):
        exe, libs = tiny_specs()
        program = DynamicLinker().link(exe, libs, CompatLayout())
        patcher = CallSitePatcher(program)
        return program, patcher, ExecutionEngine(program, LinkMode.PATCHED, patcher)

    def test_patched_mode_requires_patcher(self):
        program, _ = _dynamic()
        with pytest.raises(TraceError):
            ExecutionEngine(program, LinkMode.PATCHED)

    def test_first_execution_resolves_and_patches(self):
        program, patcher, engine = self._patched()
        site = program.module("app").function("main").entry + 32
        events, _ = engine.call_events("app", "printf", site)
        assert patcher.is_patched(site)
        # Patch overhead: a large block plus the code-page write.
        assert any(e.n_instr == PATCH_OVERHEAD_INSTRUCTIONS for e in events)
        assert any(e.kind == EventKind.STORE and e.mem_addr == site for e in events)

    def test_later_executions_call_directly(self):
        program, patcher, engine = self._patched()
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)
        events, binding = engine.call_events("app", "printf", site)
        assert len(events) == 1
        assert events[0].target == binding.func_addr
        assert not binding.via_plt

    def test_each_site_patched_separately(self):
        # The paper's point: patching is per *site*, resolution per symbol.
        program, patcher, engine = self._patched()
        app = program.module("app")
        site_a = app.function("main").entry + 32
        site_b = app.function("handler").entry + 32
        engine.call_events("app", "printf", site_a)
        engine.call_events("app", "printf", site_b)
        assert patcher.stats.sites_patched == 2
        assert engine.resolutions_emitted == 1  # symbol resolved once
