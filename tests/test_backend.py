"""Tests for the batched trace representation and the vectorized backend.

The contract under test is strict: for any event stream, the batched
backend must leave the CPU in a state *identical* to the reference
interpreter's — every counter, every cache/TLB/BTB entry and LRU order,
the float cycle clock, mechanism state and marks.  Equality is asserted
on full :meth:`CPU.snapshot` payloads, not a curated counter subset.
"""

from __future__ import annotations

import pytest

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.errors import ConfigError, TraceError
from repro.isa.events import (
    block,
    call_direct,
    call_indirect,
    cond_branch,
    context_switch,
    jmp_direct,
    load,
    mark,
    ret,
    store,
)
from repro.trace.batch import TraceBatch, iter_batches
from repro.uarch import CPU
from repro.uarch.backend import BACKENDS, BatchedBackend, make_runner
from repro.uarch.cpu import CPUHooks
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload
from tests.test_cpu import GOT, plt_call


def mixed_trace(calls: int = 12) -> list:
    """A trace exercising every event kind, trampoline pairs included."""
    events = []
    for i in range(calls):
        events.extend(plt_call())
        events.append(block(0x5000 + 64 * i, 7))
        events.append(load(0x5100, 0x7000_0000 + 64 * i))
        events.append(store(0x5108, 0x7100_0000 + 8 * (i % 3)))
        events.append(cond_branch(0x5110, 0x5200, taken=(i % 3 != 0)))
        events.append(jmp_direct(0x5200, 0x5300 + 16 * (i % 5)))
        events.append(call_indirect(0x5300, 0x6000 + 256 * (i % 4), 0x7200_0000))
        events.append(ret(0x6010, 0x5308))
        if i % 4 == 3:
            events.append(mark(("begin", "req", i)))
            events.append(block(0x5400, 3))
            events.append(mark(("end", "req", i)))
        if i % 5 == 4:
            events.append(context_switch())
        if i % 6 == 5:
            events.append(store(0x5500, GOT))  # GOT rewrite: bloom/ABTB flush
    return events


def run_reference(events, cpu: CPU) -> CPU:
    cpu.run(list(events))
    return cpu


def run_batched(events, cpu: CPU, batch_events: int = 4096) -> CPU:
    BatchedBackend(cpu, batch_events).run(iter(events))
    return cpu


def assert_equivalent(events, make_cpu, batch_events: int = 4096) -> None:
    ref = run_reference(events, make_cpu())
    fast = run_batched(events, make_cpu(), batch_events)
    assert ref.snapshot() == fast.snapshot()


def enhanced() -> CPU:
    return CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=64)))


class TestTraceBatch:
    def test_round_trip_preserves_every_field(self):
        events = mixed_trace(6)
        batch = TraceBatch.from_events(events)
        back = batch.to_events()
        assert len(back) == len(events)
        for orig, rt in zip(events, back):
            for attr in ("kind", "pc", "n_instr", "nbytes", "target", "mem_addr", "tag"):
                assert getattr(orig, attr) == getattr(rt, attr), attr
            assert bool(orig.taken) == bool(rt.taken)

    def test_iter_batches_chunks_and_sizes(self):
        events = [block(0x1000 + 64 * i, 1) for i in range(10)]
        batches = list(iter_batches(events, 4))
        assert [len(b.data) for b in batches] == [4, 4, 2]

    def test_iter_batches_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            list(iter_batches([block(0x1000, 1)], 0))


class TestBackendEquivalence:
    def test_mixed_trace_base(self):
        assert_equivalent(mixed_trace(), CPU)

    def test_mixed_trace_enhanced(self):
        assert_equivalent(mixed_trace(), enhanced)

    @pytest.mark.parametrize("batch_events", [1, 2, 3, 7, 4096])
    def test_batch_size_invariance(self, batch_events):
        assert_equivalent(mixed_trace(), enhanced, batch_events)

    def test_pair_straddling_batch_boundary(self):
        # Pair head as the last event of a batch: the lookahead must cross
        # into the next batch through the fallback cursor.
        events = [block(0x1000, 1)] * 3 + plt_call() + plt_call()
        for batch_events in (4, 5):  # head at index 3 / tail split
            assert_equivalent(events, enhanced, batch_events)

    def test_marks_identical(self):
        events = mixed_trace()
        ref = run_reference(events, CPU())
        fast = run_batched(events, CPU())
        assert ref.marks == fast.marks
        assert any(m.tag == ("begin", "req", 3) for m in fast.marks)

    def test_context_switch_fallback(self):
        events = plt_call() + [context_switch()] + plt_call()
        assert_equivalent(events, enhanced)

    def test_empty_stream(self):
        assert_equivalent([], CPU)

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workload_slice(self, name):
        cfg = ALL_WORKLOADS[name].config()
        events = list(Workload(cfg).trace(3))
        assert_equivalent(events, enhanced, batch_events=512)


class TestHooks:
    def test_hooked_cpu_falls_back_and_matches(self):
        class Recorder(CPUHooks):
            def __init__(self):
                self.trampolines = []
                self.stores = []

            def on_trampoline(self, site_pc, stub_pc, target, skipped, *a, **k):
                self.trampolines.append((site_pc, stub_pc, target, skipped))

            def on_store(self, addr):
                self.stores.append(addr)

        events = mixed_trace()

        def make(rec):
            return CPU(
                mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=64)),
                hooks=rec,
            )

        ref_rec, fast_rec = Recorder(), Recorder()
        ref = run_reference(events, make(ref_rec))
        fast = run_batched(events, make(fast_rec))
        assert ref.snapshot() == fast.snapshot()
        assert ref_rec.trampolines == fast_rec.trampolines
        assert ref_rec.stores == fast_rec.stores
        assert fast_rec.trampolines  # the hook actually observed something


class TestRunnerSelection:
    def test_backends_registry(self):
        assert BACKENDS == ("reference", "batched")

    def test_make_runner_reference_is_cpu_run(self):
        cpu = CPU()
        assert make_runner(cpu, "reference") == cpu.run

    def test_make_runner_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_runner(CPU(), "warp-speed")

    def test_batched_backend_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            BatchedBackend(CPU(), 0)

    def test_sync_hook_positions(self):
        events = [block(0x1000 + 64 * i, 1) for i in range(10)]
        positions = []
        BatchedBackend(CPU(), 4).run(iter(events), sync_hook=positions.append)
        assert positions == sorted(positions)
        assert positions[-1] == len(events)


class TestRunnerIntegration:
    def test_run_pair_backend_equivalence(self):
        from repro.experiments.runner import run_pair
        from repro.experiments.scale import Scale

        scale = Scale("tiny", {"memcached": (2, 6)})
        ref_base, ref_enh = run_pair("memcached", scale, abtb_entries=64, seed=7)
        fast_base, fast_enh = run_pair(
            "memcached", scale, abtb_entries=64, seed=7, backend="batched"
        )
        assert ref_base.counters.as_dict() == fast_base.counters.as_dict()
        assert ref_enh.counters.as_dict() == fast_enh.counters.as_dict()
        assert ref_enh.requests == fast_enh.requests

    def test_run_workload_rejects_unknown_backend(self):
        from repro.experiments.runner import run_workload

        cfg = ALL_WORKLOADS["memcached"].config()
        with pytest.raises(ConfigError):
            run_workload(cfg, measured_requests=1, backend="nope")
