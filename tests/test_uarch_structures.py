"""Unit tests for caches, TLBs, BTB, predictors and counters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.uarch import BTB, GsharePredictor, PerfCounters, ReturnAddressStack, SetAssociativeCache, TLB
from repro.uarch.timing import TimingModel


class TestCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache("L1", 1024, 64, 2)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1020)  # same line

    def test_capacity_eviction_lru(self):
        cache = SetAssociativeCache("L1", 2 * 64, 64, 2)  # 1 set, 2 ways
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)  # refresh line 0
        cache.access(2 * 64)  # evicts line 1 (LRU)
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)

    def test_sets_isolate_lines(self):
        cache = SetAssociativeCache("L1", 4 * 64, 64, 1)  # 4 sets, direct-mapped
        cache.access(0 * 64)
        cache.access(1 * 64)
        assert cache.contains(0) and cache.contains(64)

    def test_conflict_in_direct_mapped(self):
        cache = SetAssociativeCache("L1", 4 * 64, 64, 1)
        cache.access(0 * 64)
        cache.access(4 * 64)  # same set (4 sets), different tag
        assert not cache.contains(0)

    def test_access_range_spans_lines(self):
        cache = SetAssociativeCache("L1", 1024, 64, 2)
        misses = cache.access_range(0x1000, 130)  # 3 lines
        assert misses == 3
        assert cache.accesses == 3

    def test_access_range_empty(self):
        cache = SetAssociativeCache("L1", 1024, 64, 2)
        assert cache.access_range(0x1000, 0) == 0

    def test_flush_preserves_stats(self):
        cache = SetAssociativeCache("L1", 1024, 64, 2)
        cache.access(0x1000)
        cache.flush()
        assert cache.misses == 1
        assert not cache.contains(0x1000)

    def test_miss_rate(self):
        cache = SetAssociativeCache("L1", 1024, 64, 2)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("L1", 1000, 64, 2)
        with pytest.raises(ConfigError):
            SetAssociativeCache("L1", 3 * 64 * 2, 64, 2)  # 3 sets: not power of two
        with pytest.raises(ConfigError):
            SetAssociativeCache("L1", 1024, 48, 2)


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB("ITLB", 16, 4)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)  # same page
        assert not tlb.access(0x2000)

    def test_flush_invalidates(self):
        tlb = TLB("ITLB", 16, 4)
        tlb.access(0x1000)
        tlb.flush()
        assert not tlb.access(0x1000)

    def test_capacity_lru(self):
        tlb = TLB("T", 2, 2)  # one set, two ways
        tlb.access_page(1)
        tlb.access_page(2)
        tlb.access_page(1)
        tlb.access_page(3)  # evicts page 2
        assert tlb.access_page(1)
        assert not tlb.access_page(2)

    def test_access_range_pages(self):
        tlb = TLB("T", 16, 4)
        assert tlb.access_range(0xFFF, 2) == 2  # crosses a page boundary

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            TLB("T", 10, 4)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(64, 4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_corrects_target(self):
        btb = BTB(64, 4)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_peek_does_not_count(self):
        btb = BTB(64, 4)
        btb.update(0x1000, 0x2000)
        assert btb.peek(0x1000) == 0x2000
        assert btb.lookups == 0

    def test_eviction_within_set(self):
        btb = BTB(4, 1)  # 4 sets, direct-mapped; pcs map by (pc>>2)&3
        btb.update(0x0, 0xA)
        btb.update(0x10, 0xB)  # same set 0
        assert btb.peek(0x0) is None
        assert btb.peek(0x10) == 0xB

    def test_invalidate_single_entry(self):
        btb = BTB(64, 4)
        btb.update(0x1000, 0x2000)
        btb.invalidate(0x1000)
        assert btb.peek(0x1000) is None

    def test_flush_and_occupancy(self):
        btb = BTB(64, 4)
        btb.update(0x1000, 0x2000)
        btb.update(0x2000, 0x3000)
        assert btb.occupancy == 2
        btb.flush()
        assert btb.occupancy == 0


class TestGshare:
    def test_learns_constant_direction(self):
        pred = GsharePredictor(256, 8)
        for _ in range(8):
            pred.record(0x1000, True)
        assert pred.predict(0x1000)
        misses_before = pred.mispredictions
        pred.record(0x1000, True)
        assert pred.mispredictions == misses_before

    def test_learns_alternating_with_history(self):
        pred = GsharePredictor(1024, 4)
        # After warmup, gshare learns a strict alternation via history.
        outcomes = [bool(i % 2) for i in range(200)]
        for taken in outcomes[:100]:
            pred.record(0x1000, taken)
        before = pred.mispredictions
        for taken in outcomes[100:]:
            pred.record(0x1000, taken)
        assert pred.mispredictions - before < 10

    def test_reset_history_only(self):
        pred = GsharePredictor(256, 8)
        for _ in range(4):
            pred.record(0x40, True)
        pred.reset_history()
        assert pred.predictions == 4


class TestRAS:
    def test_balanced_calls_predict(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert not ras.pop_and_check(0x200)
        assert not ras.pop_and_check(0x100)
        assert ras.mispredictions == 0

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack(8)
        assert ras.pop_and_check(0x100)
        assert ras.mispredictions == 1

    def test_overflow_loses_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)  # 0x1 falls off
        assert not ras.pop_and_check(0x3)
        assert not ras.pop_and_check(0x2)
        assert ras.pop_and_check(0x1)  # lost

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(0x1)
        ras.clear()
        assert ras.pop_and_check(0x1)


class TestPerfCounters:
    def test_delta(self):
        a = PerfCounters(instructions=100, l1i_misses=5)
        b = PerfCounters(instructions=300, l1i_misses=9)
        d = b.delta(a)
        assert d.instructions == 200 and d.l1i_misses == 4

    def test_merge(self):
        a = PerfCounters(instructions=100)
        b = PerfCounters(instructions=50, loads=3)
        m = a.merge(b)
        assert m.instructions == 150 and m.loads == 3

    def test_pki(self):
        c = PerfCounters(instructions=2000, branch_mispredictions=4)
        assert c.pki("branch_mispredictions") == 2.0

    def test_pki_empty(self):
        assert PerfCounters().pki("l1i_misses") == 0.0

    def test_unknown_counter_rejected(self):
        with pytest.raises(TypeError):
            PerfCounters(bogus=1)

    def test_table4_row_keys(self):
        row = PerfCounters(instructions=1000).table4_row()
        assert set(row) == {
            "I-$ Misses",
            "I-TLB Misses",
            "D-$ Misses",
            "D-TLB Misses",
            "Branch Mispredictions",
        }

    def test_copy_is_independent(self):
        a = PerfCounters(loads=1)
        b = a.copy()
        b.loads = 9
        assert a.loads == 1


class TestTimingModel:
    def test_cycle_conversion(self):
        t = TimingModel(clock_ghz=3.0)
        assert t.cycles_to_microseconds(3000) == 1.0
        assert t.cycles_to_seconds(3e9) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimingModel(base_cpi=0)
        with pytest.raises(ConfigError):
            TimingModel(l1i_miss=-1)
