"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linker.dynamic import DynamicLinker, LinkedProgram
from repro.linker.layout import ClassicLayout
from repro.linker.module import ModuleSpec
from repro.linker.symbols import FunctionSpec
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PhysicalMemory


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(42)


def tiny_specs() -> tuple[ModuleSpec, list[ModuleSpec]]:
    """A minimal exe+two-library link set used across linker tests."""
    libc = ModuleSpec(
        "libc.so",
        [FunctionSpec("printf", 256), FunctionSpec("memcpy", 128), FunctionSpec("strlen", 64)],
        imports=[],
    )
    libx = ModuleSpec(
        "libx.so",
        [FunctionSpec("x_parse", 256), FunctionSpec("x_emit", 256)],
        imports=["memcpy", "strlen"],
    )
    exe = ModuleSpec(
        "app",
        [FunctionSpec("main", 512), FunctionSpec("handler", 512)],
        imports=["printf", "x_parse", "memcpy"],
    )
    return exe, [libc, libx]


@pytest.fixture
def tiny_program() -> LinkedProgram:
    """A linked three-module program (no memory mapping)."""
    exe, libs = tiny_specs()
    return DynamicLinker().link(exe, libs, ClassicLayout(aslr=False))


@pytest.fixture
def tiny_mapped():
    """A linked program with real page mappings; returns (program, space, phys)."""
    exe, libs = tiny_specs()
    phys = PhysicalMemory()
    linker = DynamicLinker(phys)
    space = AddressSpace(phys, "proc0")
    program = linker.link(exe, libs, ClassicLayout(aslr=False), space)
    return program, space, phys
