"""Unit tests for the page-level memory model (frames, spaces, fork/CoW)."""

from __future__ import annotations

import pytest

from repro.errors import PageFaultError
from repro.memory import (
    PAGE_SIZE,
    AddressSpace,
    Perm,
    PhysicalMemory,
    measure,
    page_base,
    page_of,
    pages_spanned,
    patch_cost_bytes,
)


class TestPageMath:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(4095) == 0
        assert page_of(4096) == 1

    def test_page_base(self):
        assert page_base(0x1234) == 0x1000

    def test_pages_spanned_single(self):
        assert list(pages_spanned(0x1000, 1)) == [1]

    def test_pages_spanned_boundary(self):
        assert list(pages_spanned(0x1FFF, 2)) == [1, 2]

    def test_pages_spanned_empty(self):
        assert list(pages_spanned(0x1000, 0)) == []

    def test_pages_spanned_large(self):
        assert len(pages_spanned(0, 10 * PAGE_SIZE)) == 10


class TestPhysicalMemory:
    def test_allocate_counts(self):
        phys = PhysicalMemory()
        phys.allocate("a")
        phys.allocate("b")
        assert phys.total_frames == 2
        assert phys.total_bytes == 2 * PAGE_SIZE

    def test_share_and_release(self):
        phys = PhysicalMemory()
        frame = phys.allocate()
        phys.share(frame)
        assert frame.refcount == 2
        phys.release(frame)
        assert phys.total_frames == 1
        phys.release(frame)
        assert phys.total_frames == 0

    def test_copy_on_write_allocates_new_frame(self):
        phys = PhysicalMemory()
        frame = phys.allocate("lib:text")
        phys.share(frame)
        copy = phys.copy_on_write(frame)
        assert copy.frame_id != frame.frame_id
        assert frame.refcount == 1
        assert copy.origin.endswith("+cow")

    def test_frames_with_origin(self):
        phys = PhysicalMemory()
        phys.allocate("libc.so:text")
        phys.allocate("libc.so:got")
        phys.allocate("app:text")
        assert len(phys.frames_with_origin("libc.so")) == 2


class TestAddressSpace:
    def test_map_private_and_access(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, 2 * PAGE_SIZE, Perm.RW)
        space.read(0x10000)
        space.write(0x10000 + PAGE_SIZE)
        assert space.mapped_pages == 2

    def test_double_map_rejected(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, PAGE_SIZE, Perm.RW)
        with pytest.raises(PageFaultError):
            space.map_private(0x10000, PAGE_SIZE, Perm.RW)

    def test_unmapped_access_raises(self):
        space = AddressSpace(PhysicalMemory())
        with pytest.raises(PageFaultError):
            space.read(0xDEAD000)

    def test_permission_enforcement(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, PAGE_SIZE, Perm.RX)
        space.fetch(0x10000)
        with pytest.raises(PageFaultError):
            space.write(0x10000)

    def test_mprotect_changes_permissions(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, PAGE_SIZE, Perm.RX)
        space.protect(0x10000, PAGE_SIZE, Perm.RW)
        space.write(0x10000)

    def test_mprotect_unmapped_raises(self):
        space = AddressSpace(PhysicalMemory())
        with pytest.raises(PageFaultError):
            space.protect(0x10000, PAGE_SIZE, Perm.RW)

    def test_unmap_releases_frames(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, PAGE_SIZE, Perm.RW)
        space.unmap(0x10000, PAGE_SIZE)
        assert phys.total_frames == 0
        assert not space.is_mapped(0x10000)

    def test_fetch_requires_execute(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys)
        space.map_private(0x10000, PAGE_SIZE, Perm.RW)
        with pytest.raises(PageFaultError):
            space.fetch(0x10000)


class TestForkCow:
    def _parent(self):
        phys = PhysicalMemory()
        space = AddressSpace(phys, "parent")
        space.map_private(0x10000, 4 * PAGE_SIZE, Perm.RW, origin="data")
        return phys, space

    def test_fork_shares_frames(self):
        phys, parent = self._parent()
        child = parent.fork("child")
        assert phys.total_frames == 4  # no copies yet
        assert child.mapped_pages == 4

    def test_child_write_privatises_one_page(self):
        phys, parent = self._parent()
        child = parent.fork("child")
        child.write(0x10000)
        assert phys.total_frames == 5
        assert child.cow_faults == 1

    def test_parent_write_also_faults(self):
        phys, parent = self._parent()
        parent.fork("child")
        parent.write(0x11000)
        assert parent.cow_faults == 1
        assert phys.total_frames == 5

    def test_second_write_same_page_no_extra_copy(self):
        phys, parent = self._parent()
        child = parent.fork("child")
        child.write(0x10000)
        child.write(0x10008)
        assert phys.total_frames == 5
        assert child.cow_faults == 1

    def test_many_children_each_copy(self):
        phys, parent = self._parent()
        children = [parent.fork(f"c{i}") for i in range(5)]
        for c in children:
            c.write(0x10000)
        # 4 original + 5 private copies of the written page
        assert phys.total_frames == 9

    def test_sole_owner_write_claims_frame_without_copy(self):
        phys, parent = self._parent()
        child = parent.fork("child")
        child.unmap(0x10000, 4 * PAGE_SIZE)
        parent.write(0x10000)  # refcount is 1 again: no copy needed
        assert phys.total_frames == 4
        assert parent.cow_faults == 0

    def test_read_never_faults(self):
        phys, parent = self._parent()
        child = parent.fork("child")
        child.read(0x10000)
        parent.read(0x10000)
        assert phys.total_frames == 4


class TestCowReport:
    def test_measure_counts_shared_and_private(self):
        phys = PhysicalMemory()
        parent = AddressSpace(phys, "p")
        parent.map_private(0x10000, 2 * PAGE_SIZE, Perm.RW)
        child = parent.fork("c")
        child.write(0x10000)
        report = measure(phys, [parent, child])
        assert report.processes == 2
        assert report.total_frames == 3
        assert report.private_frames == 2  # the copy + parent's now-sole frame
        assert report.cow_faults == 1

    def test_average_private_bytes(self):
        phys = PhysicalMemory()
        a = AddressSpace(phys, "a")
        a.map_private(0x10000, PAGE_SIZE, Perm.RW)
        report = measure(phys, [a])
        assert report.average_private_bytes == PAGE_SIZE

    def test_patch_cost_formula_matches_paper_scale(self):
        # ~280 pages, 500 processes -> ~0.5 GB, the paper's estimate.
        cost = patch_cost_bytes(280, 500)
        assert 0.4e9 < cost < 0.7e9


class TestErrorTaxonomy:
    def test_deprecated_alias_still_works(self):
        from repro import errors

        assert errors.MemoryError_ is PageFaultError

    def test_chaos_errors_are_repro_errors(self):
        from repro.errors import ChaosError, OracleViolation, ReproError

        assert issubclass(ChaosError, ReproError)
        assert issubclass(OracleViolation, ChaosError)
