"""Tests for the PE ``dllimport`` call style vs the ELF PLT convention.

The paper claims its approach covers "all dynamically linked library
techniques we are aware of".  For PE's thunk form (``call thunk; thunk:
jmp [IAT]``) the shape is identical to the ELF PLT and the mechanism
applies directly; for ``__declspec(dllimport)`` calls (``call [IAT]``)
there is no trampoline at all — nothing to skip, but also one
memory-indirect call per invocation that the *enhanced* ELF path
eliminates entirely.
"""

from __future__ import annotations

import pytest

from repro.core import TrampolineSkipMechanism
from repro.errors import TraceError
from repro.isa.kinds import EventKind
from repro.linker import DynamicLinker, StaticLinker
from repro.trace.engine import CallStyle, ExecutionEngine, LinkMode
from repro.uarch import CPU
from tests.conftest import tiny_specs


def _pe_engine():
    exe, libs = tiny_specs()
    program = DynamicLinker().link(exe, libs)
    return program, ExecutionEngine(program, call_style=CallStyle.PE_DLLIMPORT)


class TestPeDllimport:
    def test_binds_eagerly_at_load(self):
        program, _engine = _pe_engine()
        assert program.resolved_count() == 5  # every import, up front

    def test_single_indirect_call_per_invocation(self):
        program, engine = _pe_engine()
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        assert len(events) == 1
        assert events[0].kind is EventKind.CALL_INDIRECT
        assert events[0].mem_addr == binding.got_addr
        assert events[0].target == binding.func_addr

    def test_no_lazy_resolution_ever(self):
        program, engine = _pe_engine()
        site = program.module("app").function("main").entry + 32
        _, binding = engine.call_events("app", "printf", site)
        assert not binding.first_call
        assert engine.resolutions_emitted == 0

    def test_requires_dynamic_linking(self):
        exe, libs = tiny_specs()
        static = StaticLinker().link(exe, libs)
        with pytest.raises(TraceError):
            ExecutionEngine(static, LinkMode.STATIC, call_style=CallStyle.PE_DLLIMPORT)

    def test_mechanism_neither_helps_nor_hurts(self):
        program, engine = _pe_engine()
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        stream = (list(events) + engine.return_events(binding, site)) * 20
        base, enh = CPU(), CPU(mechanism=TrampolineSkipMechanism())
        base.run(iter(stream))
        enh.run(iter(stream))
        cb, ce = base.finalize(), enh.finalize()
        assert ce.trampolines_skipped == 0  # nothing to skip
        assert cb.instructions == ce.instructions
        assert cb.cycles == ce.cycles

    def test_enhanced_elf_beats_dllimport(self):
        """The skip mechanism makes ELF dynamic calls cheaper than even
        Windows-style eager binding: no IAT load, no indirect branch."""
        # PE: call [IAT] each time.
        program, engine = _pe_engine()
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        pe_stream = (list(events) + engine.return_events(binding, site)) * 30
        pe_cpu = CPU()
        pe_cpu.run(iter(pe_stream))
        pe = pe_cpu.finalize()

        # ELF + mechanism: the same calls, warmed past learning.
        exe, libs = tiny_specs()
        elf_program = DynamicLinker().link(exe, libs)
        elf_engine = ExecutionEngine(elf_program)
        elf_stream = []
        for _ in range(30):
            ev, b = elf_engine.call_events("app", "printf", site)
            elf_stream += list(ev) + elf_engine.return_events(b, site)
        elf_cpu = CPU(mechanism=TrampolineSkipMechanism())
        elf_cpu.run(iter(elf_stream))
        elf = elf_cpu.finalize()

        # Steady state: the ELF side loads the GOT only while learning;
        # the PE side loads the IAT on every single call.
        assert elf.got_loads < pe.loads
        assert elf.trampolines_skipped >= 27
