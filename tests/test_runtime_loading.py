"""Tests for runtime library loading/unloading and coherence snooping.

The paper argues the hardware "implicitly supports" library unload and
replacement (Section 4): GOT rewrites are ordinary stores, so the Bloom
filter catches them and the ABTB degrades gracefully — unlike the
software patching baseline, which leaves dangling patched call sites.
"""

from __future__ import annotations

import pytest

from repro.core import TrampolineSkipMechanism
from repro.errors import LinkError, TraceError
from repro.isa.events import coherence_inval
from repro.isa.kinds import EventKind
from repro.linker import ClassicLayout, DynamicLinker, FunctionSpec, ModuleSpec, StaticLinker
from repro.trace.engine import ExecutionEngine, LinkMode
from repro.uarch import CPU
from tests.conftest import tiny_specs


def _program_with_layout():
    exe, libs = tiny_specs()
    layout = ClassicLayout(aslr=False)
    linker = DynamicLinker()
    program = linker.link(exe, libs, layout)
    return linker, program, layout


class TestDlopen:
    def test_dlopen_adds_module_and_symbols(self):
        linker, program, layout = _program_with_layout()
        plugin = ModuleSpec("plugin.so", [FunctionSpec("plugin_init", 128)], imports=["memcpy"])
        image = linker.dlopen(program, plugin, layout)
        assert "plugin.so" in program.modules
        assert program.symbols.lookup("plugin_init").module == "plugin.so"
        assert image.text_base > 0

    def test_dlopen_imports_bind_lazily(self):
        linker, program, layout = _program_with_layout()
        plugin = ModuleSpec("plugin.so", [FunctionSpec("plugin_init", 128)], imports=["memcpy"])
        linker.dlopen(program, plugin, layout)
        binding = program.bind_call("plugin.so", "memcpy")
        assert binding.first_call and binding.via_plt

    def test_dlopen_does_not_interpose(self):
        linker, program, layout = _program_with_layout()
        original = program.symbols.lookup("printf").address
        shadow = ModuleSpec("shadow.so", [FunctionSpec("printf", 64)])
        linker.dlopen(program, shadow, layout)
        assert program.symbols.lookup("printf").address == original

    def test_dlopen_duplicate_rejected(self):
        linker, program, layout = _program_with_layout()
        with pytest.raises(LinkError):
            linker.dlopen(program, ModuleSpec("libc.so", []), layout)

    def test_dlopen_undefined_import_rejected(self):
        linker, program, layout = _program_with_layout()
        bad = ModuleSpec("bad.so", [], imports=["no_such_symbol"])
        with pytest.raises(LinkError):
            linker.dlopen(program, bad, layout)

    def test_dlopen_then_call_through_engine(self):
        linker, program, layout = _program_with_layout()
        plugin = ModuleSpec("plugin.so", [FunctionSpec("plugin_init", 128)], imports=[])
        linker.dlopen(program, plugin, layout)
        exe_main = program.module("app").function("main").entry
        # The app cannot call plugin_init via its PLT (not imported at link
        # time) — dlopened symbols are reached via dlsym-style pointers,
        # which is exactly the CALL_INDIRECT path.
        with pytest.raises(LinkError):
            program.bind_call("app", "plugin_init")
        assert exe_main  # sanity


class TestDlclose:
    def test_dlclose_emits_got_reset_stores(self):
        linker, program, layout = _program_with_layout()
        engine = ExecutionEngine(program)
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)  # resolve printf
        events = engine.dlclose_events("libc.so")
        stores = [e for e in events if e.kind == EventKind.STORE]
        assert len(stores) == 1
        assert stores[0].tag == "got-store"

    def test_dlclose_flushes_abtb_via_bloom(self):
        linker, program, layout = _program_with_layout()
        engine = ExecutionEngine(program)
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        site = program.module("app").function("main").entry + 32
        for _ in range(4):  # resolve + learn + skip
            events, binding = engine.call_events("app", "printf", site)
            events += engine.return_events(binding, site)
            cpu.run(events)
        assert cpu.finalize().trampolines_skipped >= 1
        cpu.run(engine.dlclose_events("libc.so"))
        assert len(mech.abtb) == 0  # the GOT reset store flushed everything
        assert mech.stats.unsafe_skips == 0

    def test_dlclose_only_under_dynamic_linking(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        engine = ExecutionEngine(program, LinkMode.STATIC)
        with pytest.raises(TraceError):
            engine.dlclose_events("libc.so")

    def test_reload_after_dlclose(self):
        linker, program, layout = _program_with_layout()
        engine = ExecutionEngine(program)
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)
        engine.dlclose_events("libc.so")
        # Reload a fixed libc (new address), app re-resolves lazily.
        fixed = ModuleSpec(
            "libc.so",
            [FunctionSpec("printf", 256), FunctionSpec("memcpy", 128), FunctionSpec("strlen", 64)],
        )
        linker.dlopen(program, fixed, layout)
        # app's GOT slot for printf was reset: the next call resolves again.
        events, binding = engine.call_events("app", "printf", site)
        assert binding.first_call
        assert binding.func_addr == program.module("libc.so").function("printf").entry


class TestCoherenceInvalidation:
    def test_remote_invalidation_flushes(self):
        from tests.test_cpu import GOT, plt_call

        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(plt_call() * 3)
        assert len(mech.abtb) == 1
        cpu.run([coherence_inval(GOT)])
        assert len(mech.abtb) == 0
        assert mech.stats.coherence_flushes == 1

    def test_unrelated_invalidation_ignored(self):
        from tests.test_cpu import plt_call

        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(plt_call() * 3)
        cpu.run([coherence_inval(0x123456)])
        assert len(mech.abtb) == 1

    def test_invalidation_costs_no_instructions(self):
        cpu = CPU(mechanism=TrampolineSkipMechanism())
        cpu.run([coherence_inval(0x1000)])
        c = cpu.finalize()
        assert c.instructions == 0 and c.cycles == 0

    def test_base_cpu_ignores_invalidations(self):
        cpu = CPU()
        cpu.run([coherence_inval(0x1000)])
        assert cpu.finalize().instructions == 0


class TestVirtualCalls:
    def _workload(self, prob: float):
        from tests.test_integration import tiny_workload_config
        from repro.workloads.base import RequestClass, Workload

        rc = RequestClass(
            "R", segments=30, segment_instr=40, call_prob=0.5,
            phase_len=10, phase_set=2, app_phase_fns=4, virtual_call_prob=prob,
        )
        return Workload(tiny_workload_config(request_classes=(rc,)))

    def test_virtual_calls_emitted(self):
        wl = self._workload(0.5)
        kinds = [e.kind for e in wl.trace(5, include_marks=False)]
        assert EventKind.CALL_INDIRECT in kinds

    def test_virtual_calls_never_skipped(self):
        # Section 2.4.2: virtual dispatch uses a different instruction
        # sequence; the mechanism leaves it alone.
        wl = self._workload(1.0)
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        base_skips = cpu.finalize().trampolines_skipped
        cpu.run(wl.trace(20, include_marks=False))
        c = cpu.finalize()
        # Trampolines still skip, but indirect-call counts are untouched
        # by the skip machinery: every CALL_INDIRECT executed.
        assert c.trampolines_skipped > base_skips
        assert mech.stats.unsafe_skips == 0

    def test_virtual_calls_add_btb_pressure(self):
        quiet = self._workload(0.0)
        noisy = self._workload(1.0)
        counters = []
        for wl in (quiet, noisy):
            cpu = CPU()
            cpu.run(wl.trace(10, include_marks=False))
            counters.append(cpu.finalize())
        assert counters[1].btb_lookups > counters[0].btb_lookups
