"""The sweep engine: spec expansion, set-associative ABTB, analysis,
end-to-end execution with resume, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.core.abtb import ABTB, ABTB_ENTRY_BYTES
from repro.core.config import MechanismConfig
from repro.difftest import difftest_workload
from repro.errors import ConfigError
from repro.experiments.hwcost import mechanism_storage_bytes
from repro.sweep import (
    SweepSpec,
    aggregate_configs,
    analyze_sweep,
    load_spec,
    pareto_frontier,
    report_sweep,
    run_sweep,
    sensitivity,
)

# Addresses on the 16-byte PLT-stub pitch: every +16 lands in the next set.
STRIDE = 16


def _tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="t",
        workloads=["memcached"],
        warmup=1,
        measured=3,
        abtb_entries=[16],
        bloom_bits=[1 << 14],
    )
    base.update(overrides)
    return SweepSpec(**base)


# --------------------------------------------------------------------------
# SweepSpec
# --------------------------------------------------------------------------


class TestSweepSpec:
    def test_expansion_is_the_full_cross_product(self):
        spec = _tiny_spec(
            workloads=["memcached", "apache"],
            abtb_entries=[16, 64],
            abtb_ways=[0, 4],
            bloom_bits=[1 << 14, 1 << 17],
        )
        points = spec.expand()
        assert spec.size() == 2 * 2 * 2 * 2
        assert len(points) == spec.size()
        assert len({p.key for p in points}) == len(points)

    def test_points_of_one_workload_share_cost_axis_keys(self):
        spec = _tiny_spec(abtb_entries=[16, 64])
        points = spec.expand()
        costs = {p.key: p.cost_bytes for p in points}
        for p in points:
            assert costs[p.key] == mechanism_storage_bytes(
                p.mechanism["abtb_entries"], bloom_bits=p.mechanism["bloom_bits"]
            )

    def test_round_trip_through_json(self, tmp_path):
        spec = _tiny_spec(abtb_ways=[0, 2], abtb_policy=["lru", "fifo"])
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert SweepSpec.load(path) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep spec field"):
            SweepSpec.from_dict({"abtb_size": [16]})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            _tiny_spec(workloads=["redis"])

    def test_empty_and_duplicate_axes_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            _tiny_spec(abtb_entries=[])
        with pytest.raises(ConfigError, match="duplicate"):
            _tiny_spec(abtb_entries=[16, 16])

    def test_invalid_combination_raises_with_context(self):
        spec = _tiny_spec(abtb_entries=[16], abtb_ways=[5])  # 5 doesn't divide 16
        with pytest.raises(ConfigError, match="invalid sweep point"):
            spec.expand()

    def test_skip_invalid_drops_quietly(self):
        spec = _tiny_spec(abtb_entries=[16, 64], abtb_ways=[0, 5], skip_invalid=True)
        points = spec.expand()
        assert len(points) == 2  # only ways=0 survives for both sizes
        assert spec.size() == 4

    def test_scale_covers_every_workload(self):
        spec = _tiny_spec(workloads=["memcached", "apache"], warmup=3, measured=7)
        scale = spec.scale()
        assert (scale.warmup("memcached"), scale.measured("memcached")) == (3, 7)
        assert (scale.warmup("apache"), scale.measured("apache")) == (3, 7)


# --------------------------------------------------------------------------
# Set-associative ABTB
# --------------------------------------------------------------------------


class TestSetAssociativeABTB:
    def test_ways_must_divide_entries(self):
        with pytest.raises(ConfigError):
            ABTB(16, ways=5)
        with pytest.raises(ConfigError):
            MechanismConfig(abtb_entries=16, abtb_ways=5)

    def test_fully_associative_default_unchanged(self):
        abtb = ABTB(4)
        for i in range(5):
            abtb.insert(0x1000 + i * STRIDE, 0x2000 + i, 0x3000 + i)
        assert len(abtb) == 4
        assert abtb.lookup(0x1000) is None  # LRU victim across the whole table
        assert abtb.lookup(0x1000 + 4 * STRIDE) == 0x2000 + 4

    def test_set_conflicts_evict_within_one_set_only(self):
        # 8 entries / 2 ways = 4 sets; addresses 4*STRIDE apart collide.
        abtb = ABTB(8, ways=2)
        base = 0x1000
        conflicting = [base + i * 4 * STRIDE for i in range(3)]
        for i, addr in enumerate(conflicting):
            abtb.insert(addr, 0x2000 + i, 0x3000 + i)
        other = base + STRIDE  # different set, untouched by the conflicts
        abtb.insert(other, 0x2FFF, 0x3FFF)
        assert abtb.lookup(conflicting[0]) is None  # evicted by set pressure
        assert abtb.lookup(conflicting[1]) == 0x2001
        assert abtb.lookup(conflicting[2]) == 0x2002
        assert abtb.lookup(other) == 0x2FFF
        assert abtb.evictions == 1

    def test_fifo_policy_ignores_reuse_within_set(self):
        abtb = ABTB(8, ways=2, policy="fifo")
        a, b, c = (0x1000 + i * 4 * STRIDE for i in range(3))
        abtb.insert(a, 1, 11)
        abtb.insert(b, 2, 12)
        assert abtb.lookup(a) == 1  # reuse; FIFO must not refresh it
        abtb.insert(c, 3, 13)
        assert abtb.lookup(a) is None
        assert abtb.lookup(b) == 2

    def test_lru_policy_protects_reused_entry(self):
        abtb = ABTB(8, ways=2, policy="lru")
        a, b, c = (0x1000 + i * 4 * STRIDE for i in range(3))
        abtb.insert(a, 1, 11)
        abtb.insert(b, 2, 12)
        assert abtb.lookup(a) == 1
        abtb.insert(c, 3, 13)
        assert abtb.lookup(a) == 1
        assert abtb.lookup(b) is None

    def test_snapshot_round_trip_preserves_set_state(self):
        abtb = ABTB(8, ways=2)
        for i in range(6):
            abtb.insert(0x1000 + i * STRIDE, 0x2000 + i, 0x3000 + i)
        abtb.lookup(0x1000)
        state = abtb.snapshot()
        clone = ABTB(8, ways=2)
        clone.restore(state)
        assert clone.snapshot() == state
        assert len(clone) == len(abtb)

    def test_restore_rejects_mismatched_geometry(self):
        state = ABTB(8, ways=2).snapshot()
        with pytest.raises(ConfigError):
            ABTB(8, ways=4).restore(state)
        with pytest.raises(ConfigError):
            ABTB(8).restore(state)

    def test_storage_cost_is_associativity_independent(self):
        assert ABTB(64, ways=4).storage_bytes == 64 * ABTB_ENTRY_BYTES
        assert ABTB(64).storage_bytes == 64 * ABTB_ENTRY_BYTES

    def test_difftest_full_snapshot_equality_set_associative(self):
        report = difftest_workload(
            "memcached",
            requests=8,
            mechanism_config=MechanismConfig(abtb_entries=64, abtb_ways=4),
        )
        assert report.ok, report.render()


# --------------------------------------------------------------------------
# Analysis
# --------------------------------------------------------------------------


def _row(workload, cost, speedup, **axes):
    base = {
        "workload": workload,
        "abtb_entries": 16,
        "abtb_ways": 0,
        "abtb_policy": "lru",
        "bloom_bits": 1 << 14,
        "bloom_hashes": 4,
        "btb_entries": 2048,
        "btb_ways": 4,
        "gshare_entries": 4096,
    }
    base.update(axes)
    base["cost_bytes"] = cost
    base["speedup"] = speedup
    base["key"] = f"{workload}:{cost}:{sorted(axes.items())}"
    return base


class TestAnalysis:
    def test_geomean_aggregation_across_workloads(self):
        rows = [
            _row("memcached", 100, 2.0),
            _row("apache", 100, 0.5),
        ]
        configs = aggregate_configs(rows)
        assert len(configs) == 1
        assert configs[0]["speedup"] == pytest.approx(1.0)
        assert configs[0]["workloads"] == {"memcached": 2.0, "apache": 0.5}

    def test_pareto_frontier_marks_dominated_points(self):
        configs = [
            {"cost_bytes": 100, "speedup": 1.10},
            {"cost_bytes": 200, "speedup": 1.05},  # dominated: dearer, slower
            {"cost_bytes": 300, "speedup": 1.30},
            {"cost_bytes": 300, "speedup": 1.20},  # equal cost, slower
        ]
        frontier = pareto_frontier(configs)
        assert [c["cost_bytes"] for c in frontier] == [100, 300]
        assert [c["on_frontier"] for c in configs] == [True, False, True, False]

    def test_sensitivity_ranks_axes_by_effect(self):
        rows = [
            _row("memcached", 100, 1.0, abtb_entries=16),
            _row("memcached", 200, 1.5, abtb_entries=64),
            _row("memcached", 100, 1.2, abtb_entries=16, abtb_ways=4),
            _row("memcached", 200, 1.3, abtb_entries=64, abtb_ways=4),
        ]
        axis_values = {"abtb_entries": (16, 64), "abtb_ways": (0, 4)}
        tables = sensitivity(rows, axis_values)
        assert [t["axis"] for t in tables] == ["abtb_entries", "abtb_ways"]
        entries = tables[0]
        assert entries["effect"] == pytest.approx(0.3)  # (1.4+1.5)/... means
        assert [v["value"] for v in entries["values"]] == [16, 64]

    def test_analyze_ignores_unfinished_points(self):
        spec = _tiny_spec(abtb_entries=[16, 64])
        points = spec.expand()
        done = {points[0].key: {"speedup": 1.2, "skip_rate": 0.1}}
        analysis = analyze_sweep(points, done, spec.axis_values())
        assert len(analysis["points"]) == 1
        assert len(analysis["configs"]) == 1
        assert analysis["best"]["overall"]["speedup"] == pytest.approx(1.2)


# --------------------------------------------------------------------------
# Engine end-to-end
# --------------------------------------------------------------------------


class TestEngine:
    def test_run_resume_and_report(self, tmp_path):
        spec = _tiny_spec(abtb_entries=[16, 64], abtb_ways=[0, 4])
        out = tmp_path / "sweep"
        result = run_sweep(spec, out, jobs=1)
        assert result.ok
        assert result.summary["completed"] == 4
        assert result.summary["executed"] == 4
        # All four points of the one workload shared one trace bundle.
        assert result.summary["trace_cache"]["hit_rate"] > 0
        analysis_dir = out / "analysis"
        for name in ("points", "pareto", "sensitivity", "best", "summary"):
            assert (analysis_dir / f"{name}.json").is_file()
        html = (analysis_dir / "report.html").read_text()
        assert "Pareto frontier" in html and "viz-root" in html

        # Resume: the checkpoint already has every point.
        resumed = run_sweep(None, out, jobs=1)
        assert resumed.summary["resumed"] == 4
        assert resumed.summary["executed"] == 0

        # Report-only never executes either.
        reported = report_sweep(out)
        assert reported.summary["completed"] == 4
        assert reported.summary["executed"] == 0
        assert load_spec(out) == spec

    def test_spec_mismatch_refused(self, tmp_path):
        out = tmp_path / "sweep"
        run_sweep(_tiny_spec(), out)
        with pytest.raises(ConfigError, match="different spec"):
            run_sweep(_tiny_spec(abtb_entries=[64]), out)

    def test_report_requires_a_sweep_directory(self, tmp_path):
        with pytest.raises(ConfigError, match="not a sweep output directory"):
            report_sweep(tmp_path)

    def test_sharded_run_matches_serial_checkpoint(self, tmp_path):
        spec = _tiny_spec(abtb_entries=[16, 64])
        serial = run_sweep(spec, tmp_path / "serial", jobs=1)
        sharded = run_sweep(spec, tmp_path / "sharded", jobs=2)
        assert serial.campaign.completed.keys() == sharded.campaign.completed.keys()
        for key in serial.campaign.completed:
            assert (
                serial.campaign.completed[key]["speedup"]
                == sharded.campaign.completed[key]["speedup"]
            )


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


class TestSweepCLI:
    def test_run_resume_report(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_tiny_spec(abtb_entries=[16, 64]).to_dict()))
        out = tmp_path / "out"
        assert main(["sweep", "run", "--spec", str(spec_path), "--out", str(out)]) == 0
        assert "2/2 point(s) completed" in capsys.readouterr().out
        assert main(["sweep", "resume", "--out", str(out)]) == 0
        assert "2 resumed, 0 executed" in capsys.readouterr().out
        assert main(["sweep", "report", "--out", str(out)]) == 0
        assert "pareto:" in capsys.readouterr().out

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"abtb_size": [16]}')
        code = main(["sweep", "run", "--spec", str(spec_path), "--out", str(tmp_path / "o")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
