"""Unit tests for the trace-event layer."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.isa import (
    BRANCH_KINDS,
    MEMORY_KINDS,
    EventKind,
    block,
    call_direct,
    call_indirect,
    cond_branch,
    context_switch,
    count_instructions,
    jmp_direct,
    jmp_indirect,
    load,
    mark,
    ret,
    store,
)


class TestConstructors:
    def test_block_counts_instructions(self):
        ev = block(0x1000, 7)
        assert ev.kind is EventKind.BLOCK
        assert ev.n_instr == 7
        assert ev.nbytes == 28  # 4 bytes per instruction by default

    def test_block_explicit_bytes(self):
        assert block(0x1000, 3, nbytes=10).nbytes == 10

    def test_block_rejects_empty(self):
        with pytest.raises(TraceError):
            block(0x1000, 0)

    def test_call_direct_fields(self):
        ev = call_direct(0x400100, 0x500000)
        assert ev.kind is EventKind.CALL_DIRECT
        assert (ev.pc, ev.target, ev.n_instr, ev.nbytes) == (0x400100, 0x500000, 1, 5)

    def test_call_indirect_memory_operand(self):
        ev = call_indirect(0x400100, 0x500000, mem_addr=0x601000)
        assert ev.mem_addr == 0x601000

    def test_call_indirect_register_operand_has_no_memory(self):
        assert call_indirect(0x400100, 0x500000).mem_addr == 0

    def test_jmp_indirect_is_the_trampoline_shape(self):
        ev = jmp_indirect(0x401000, 0x7F0000, 0x602018)
        assert ev.kind is EventKind.JMP_INDIRECT
        assert ev.mem_addr == 0x602018  # the GOT slot
        assert ev.nbytes == 6  # jmp *GOT encoding

    def test_ret_carries_return_target(self):
        ev = ret(0x500010, 0x400105)
        assert ev.target == 0x400105
        assert ev.nbytes == 1

    def test_cond_branch_outcome(self):
        assert cond_branch(0x1000, 0x2000, taken=True).taken is True
        assert cond_branch(0x1000, 0x2000, taken=False).taken is False

    def test_load_store_addresses(self):
        assert load(0x1000, 0xDEAD0).mem_addr == 0xDEAD0
        assert store(0x1000, 0xBEEF0).mem_addr == 0xBEEF0

    def test_context_switch_has_no_instructions(self):
        assert context_switch().n_instr == 0

    def test_mark_carries_tag(self):
        assert mark(("begin", "GET", 3)).tag == ("begin", "GET", 3)

    def test_jmp_direct(self):
        assert jmp_direct(0x1000, 0x2000).kind is EventKind.JMP_DIRECT


class TestKindSets:
    def test_branch_kinds_cover_all_control_transfers(self):
        assert EventKind.CALL_DIRECT in BRANCH_KINDS
        assert EventKind.JMP_INDIRECT in BRANCH_KINDS
        assert EventKind.RET in BRANCH_KINDS
        assert EventKind.BLOCK not in BRANCH_KINDS

    def test_memory_kinds(self):
        assert EventKind.LOAD in MEMORY_KINDS
        assert EventKind.STORE in MEMORY_KINDS
        assert EventKind.JMP_INDIRECT in MEMORY_KINDS
        assert EventKind.RET not in MEMORY_KINDS


class TestEquality:
    def test_equal_events(self):
        assert load(0x10, 0x20) == load(0x10, 0x20)

    def test_unequal_events(self):
        assert load(0x10, 0x20) != store(0x10, 0x20)

    def test_hashable(self):
        assert len({load(0x10, 0x20), load(0x10, 0x20), store(0x10, 0x20)}) == 2


def test_count_instructions_sums_stream():
    events = [block(0, 10), call_direct(40, 100), ret(200, 45), mark("x")]
    assert count_instructions(iter(events)) == 12
