"""Concurrency hardening: trace-store commit discipline, capped/jittered
backoff, and attempt-gated callbacks.

Three failure modes this file pins down:

* ``TraceStore.save`` rewriting a committed entry under a concurrent
  reader (the reader passed ``has()``, then loaded a half-swapped mix of
  old and new segment files);
* uncapped, jitterless exponential backoff (multi-minute sleeps, and N
  shards failing together retrying in lockstep);
* a timed-out attempt's abandoned thread still invoking progress and
  incident-recorder callbacks, double-counting into the retry's results.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.runner import (
    AttemptGate,
    RetryPolicy,
    _run_one_pair,
)
from repro.experiments.scale import SMOKE
from repro.trace.engine import LinkMode
from repro.resilience import IncidentRecorder
from repro.trace.store import TraceStore, generate_bundle, trace_key
from repro.workloads import ALL_WORKLOADS, Workload

SEED = 1234


def _bundle(warmup: int = 1, measured: int = 2):
    wl = Workload(ALL_WORKLOADS["memcached"].config(seed=SEED), LinkMode.DYNAMIC)
    bundle = generate_bundle(wl, warmup, measured)
    key = trace_key(wl.config, LinkMode.DYNAMIC, warmup, measured)
    return key, bundle


# --------------------------------------------------------------------------
# TraceStore: committed entries are immutable; concurrent fill is safe.
# --------------------------------------------------------------------------


class TestTraceStoreCommitDiscipline:
    def test_save_skips_committed_entry(self, tmp_path):
        key, bundle = _bundle()
        store = TraceStore(tmp_path)
        entry = store.save(key, bundle)
        stamps = {
            name: os.stat(entry / name).st_mtime_ns
            for name in os.listdir(entry)
        }
        assert store.save(key, bundle) == entry
        after = {
            name: os.stat(entry / name).st_mtime_ns
            for name in os.listdir(entry)
        }
        assert after == stamps  # no file was rewritten

    def test_save_completes_partial_entry(self, tmp_path):
        # A crash mid-save leaves segments without the commit marker; the
        # next writer must finish the entry, not skip it.
        key, bundle = _bundle()
        store = TraceStore(tmp_path)
        entry = store.save(key, bundle)
        (entry / "meta.json").unlink()
        assert store.load(key) is None
        store.save(key, bundle)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.total_events == bundle.total_events

    def test_load_counters(self, tmp_path):
        key, bundle = _bundle()
        store = TraceStore(tmp_path)
        assert store.load(key) is None
        store.save(key, bundle)
        assert store.load(key) is not None
        stats = store.cache_stats()
        assert stats == {"hits": 1, "misses": 1, "hit_rate": 0.5}


def _hammer_store(root: str, key: str, expected_events: int, rounds: int):
    """Worker: race save/load on one key; every load must be all-or-nothing."""
    wl = Workload(ALL_WORKLOADS["memcached"].config(seed=SEED), LinkMode.DYNAMIC)
    bundle = generate_bundle(wl, 1, 2)
    store = TraceStore(root)
    for _ in range(rounds):
        loaded = store.load(key)
        if loaded is not None and loaded.total_events != expected_events:
            return f"partial bundle observed: {loaded.total_events} events"
        store.save(key, bundle)
        loaded = store.load(key)
        if loaded is None:
            return "load missed after own save committed"
        if loaded.total_events != expected_events:
            return f"partial bundle after save: {loaded.total_events} events"
    return "ok"


class TestTraceStoreConcurrency:
    def test_simultaneous_save_load_one_key(self, tmp_path):
        """N processes hammer one key: loads are complete bundles or misses."""
        key, bundle = _bundle()
        expected = bundle.total_events
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            verdicts = pool.starmap(
                _hammer_store,
                [(str(tmp_path), key, expected, 6) for _ in range(4)],
            )
        assert verdicts == ["ok"] * 4
        # The survivors agree on one committed, readable entry.
        final = TraceStore(tmp_path).load(key)
        assert final is not None
        assert final.total_events == expected


# --------------------------------------------------------------------------
# RetryPolicy: capped exponential backoff with deterministic jitter.
# --------------------------------------------------------------------------


class TestBackoff:
    def test_cap_bounds_the_exponential_curve(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=10.0, backoff_max_s=5.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 5.0  # 10s uncapped
        assert policy.backoff(8) == 5.0  # would be 10**7 s uncapped

    def test_defaults_keep_historical_schedule(self):
        policy = RetryPolicy()
        assert [policy.backoff(n) for n in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.5)
        first = policy.backoff(1, key="memcached::abtb=256")
        assert first == policy.backoff(1, key="memcached::abtb=256")
        assert 0.5 <= first <= 1.0  # cap stays a hard upper bound

    def test_jitter_desynchronises_distinct_keys(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.5)
        delays = {policy.backoff(1, key=f"shard-{i}") for i in range(8)}
        assert len(delays) > 1

    def test_zero_jitter_ignores_key(self):
        policy = RetryPolicy()
        assert policy.backoff(2, key="a") == policy.backoff(2, key="b") == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_max_s=-1.0)

    def test_retry_sleeps_are_jittered_and_keyed(self):
        sleeps = []
        calls = {"n": 0}

        def run_fn(workload, scale, abtb):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ExperimentError("transient")
            return None, None

        policy = RetryPolicy(max_retries=3, backoff_base_s=1.0,
                             backoff_max_s=1.0, jitter=0.5)
        # Bypassing summarize by failing is simpler: make the final
        # attempt fail too and check the recorded sleeps alone.
        calls["n"] = -10**9  # never succeeds
        outcome = _run_one_pair(
            "k1", "memcached", SMOKE, 16, policy, run_fn, sleeps.append
        )
        assert outcome["failed"]
        assert sleeps == [policy.backoff(n, key="k1") for n in (1, 2, 3)]
        assert all(0.5 <= s <= 1.0 for s in sleeps)


# --------------------------------------------------------------------------
# AttemptGate: abandoned attempts stop reporting.
# --------------------------------------------------------------------------


class TestAttemptGate:
    def test_wrap_gates_callback(self):
        gate = AttemptGate()
        hits = []
        gated = gate.wrap(hits.append)
        gated(1)
        gate.expire()
        gated(2)
        assert hits == [1]
        assert gate.wrap(None) is None

    def test_recorder_proxy_gates_record_and_delegates_rest(self):
        gate = AttemptGate()
        recorder = IncidentRecorder()
        proxy = gate.recorder(recorder)
        proxy.record("watchdog_divergence", "before expire", severity="warning")
        gate.expire()
        proxy.record("watchdog_divergence", "after expire", severity="warning")
        assert len(recorder) == 1
        # Non-record attributes pass through to the wrapped recorder.
        assert proxy.counts() == recorder.counts()
        assert gate.recorder(None) is None

    def test_abandoned_attempt_callbacks_are_dropped(self):
        """The exact double-count scenario: attempt 1 times out, its thread
        keeps calling progress after the retry started — silently."""
        progress = []
        gates = []

        def run_fn(workload, scale, abtb, gate=None):
            gates.append(gate)
            report = gate.wrap(progress.append)
            report(f"attempt-{len(gates)}")
            if len(gates) == 1:
                raise ExperimentError("timed out")
            return report  # hand the live callback back for inspection

        policy = RetryPolicy(max_retries=1)
        # _run_one_pair unpacks the return as (base, enhanced): make the
        # second attempt return a 2-tuple carrying the callback.
        def run_fn2(workload, scale, abtb, gate=None):
            result = run_fn(workload, scale, abtb, gate=gate)
            return (result, result) if result is not None else None

        with pytest.raises(Exception):
            # summarize_pair will choke on our fake pair; that's fine —
            # the gate bookkeeping we assert on happened before it.
            _run_one_pair(
                "k", "memcached", SMOKE, 16, policy, run_fn2, lambda _s: None
            )
        assert len(gates) == 2
        first, second = gates
        assert not first.live and second.live
        # The zombie thread from attempt 1 fires its stale callback now:
        stale = first.wrap(progress.append)
        stale("zombie")
        assert progress == ["attempt-1", "attempt-2"]  # zombie dropped

    def test_each_attempt_gets_a_fresh_gate(self):
        gates = []

        def run_fn(workload, scale, abtb, gate=None):
            gates.append(gate)
            raise ExperimentError("always")

        outcome = _run_one_pair(
            "k", "memcached", SMOKE, 16,
            RetryPolicy(max_retries=2), run_fn, lambda _s: None,
        )
        assert outcome["failed"]
        assert len(gates) == 3
        assert len(set(map(id, gates))) == 3
        assert all(not g.live for g in gates)  # all expired on failure
