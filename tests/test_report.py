"""Edge-case tests for :mod:`repro.analysis.report`.

The report types are the rendering substrate for every experiment *and*
the observability profiler's hot-trampoline tables, so their corner
behaviour (empty tables, mixed-type cells, short series) is load-bearing.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Report, Series, Table


class TestTableEdgeCases:
    def test_empty_table_renders_header_only(self):
        table = Table("Empty", ["a", "bb"])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Empty"
        assert "a" in rendered and "bb" in rendered
        # Title, underline, column header, column underline — no rows.
        assert len(lines) == 4

    def test_add_row_rejects_wrong_arity(self):
        table = Table("T", ["x", "y"])
        with pytest.raises(ValueError, match="expected 2 values, got 3"):
            table.add_row(1, 2, 3)
        with pytest.raises(ValueError, match="expected 2 values, got 1"):
            table.add_row(1)

    def test_mixed_type_columns_render(self):
        table = Table("Mixed", ["name", "value"])
        table.add_row("tiny", 0.00123)
        table.add_row("big", 1234567.0)
        table.add_row("int", 42)
        table.add_row("text", "n/a")
        table.add_row("zero", 0.0)
        rendered = table.render()
        assert "0.001" in rendered          # small floats keep 3 decimals
        assert "1,234,567" in rendered      # big floats get separators
        assert "42" in rendered
        assert "n/a" in rendered
        # float zero renders as bare 0, not 0.000
        assert any(line.split()[-1] == "0" for line in rendered.splitlines())

    def test_column_lookup(self):
        table = Table("T", ["k", "v"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("v") == [1, 2]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_column_widths_fit_longest_cell(self):
        table = Table("T", ["short", "col"])
        table.add_row("a-very-long-cell-value", 1)
        header, underline, row = table.render().splitlines()[2:5]
        assert len(underline) >= len("a-very-long-cell-value")


class TestSeriesEdgeCases:
    def test_render_with_fewer_points_than_max_keeps_all(self):
        series = Series("warmup", x=[1.0, 2.0, 3.0], y=[0.1, 0.2, 0.3])
        rendered = series.render(max_points=12)
        assert rendered.startswith("warmup:")
        assert rendered.count("(") == 3

    def test_render_downsamples_long_series(self):
        n = 100
        series = Series("s", x=[float(i) for i in range(n)], y=[0.0] * n)
        rendered = series.render(max_points=10)
        assert rendered.count("(") <= 10

    def test_render_empty_series(self):
        assert Series("empty", x=[], y=[]).render() == "empty: "


class TestReportShapes:
    def test_all_shapes_hold_failure(self):
        report = Report("exp", "desc", shape_checks={"good": True, "bad": False})
        assert not report.all_shapes_hold
        rendered = report.render()
        assert "[PASS] good" in rendered
        assert "[FAIL] bad" in rendered

    def test_all_shapes_hold_vacuous_truth(self):
        assert Report("exp", "desc").all_shapes_hold

    def test_render_includes_tables_series_notes(self):
        table = Table("T", ["c"])
        table.add_row(1)
        report = Report(
            "exp",
            "desc",
            tables=[table],
            series=[Series("s", [1.0], [2.0])],
            notes=["scaled down"],
        )
        rendered = report.render()
        assert "=== exp: desc ===" in rendered
        assert "T" in rendered and "s: " in rendered
        assert "note: scaled down" in rendered
