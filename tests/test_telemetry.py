"""Tests for the live telemetry plane (PR 7).

Covers the correlated event bus (sequence numbers, ring drops, blocking
waits, metrics mirroring, JSONL round-trip), the bucket-mean
downsampler, incident→bus mirroring, the heartbeat progress schema and
its end-to-end path (worker tracker → renew body → manager banking →
lease rows), the Prometheus exposition format via a small parser (every
family announced with # HELP/# TYPE, histograms with le buckets, +Inf,
_sum/_count), the new HTTP surface (content types, payload shapes,
404/405), SSE framing and Last-Event-ID resume on ``/events``, the
``/timeseries`` window endpoint, the live and offline dashboards, and
the campaign-level events emitted by ``run_campaign``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.errors import SchemaError
from repro.experiments.runner import _counted_stream, run_campaign
from repro.experiments.scale import SMOKE
from repro.obs.dashboard import (
    load_snapshot_from_dir,
    render_dashboard,
    snapshot_from_manager,
    write_dashboard,
)
from repro.obs.events import Event, EventBus, downsample, load_event_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import TrampolineProfiler
from repro.resilience import IncidentRecorder, SupervisorPolicy
from repro.service import CampaignManager, CampaignSpec
from repro.service.api import ManagerServer
from repro.service.schemas import RenewRequest, ShardProgress
from repro.service.worker import ManagerClient, WorkerAgent, _ProgressTracker


class Clock:
    """Deterministic monotonic clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


FAST = SupervisorPolicy(
    shard_deadline_s=10.0,
    max_shard_failures=3,
    backoff_base_s=1.0,
    backoff_factor=2.0,
    poll_interval_s=0.01,
)


# ---------------------------------------------------------------- event bus


class TestEventBus:
    def test_seq_monotonic_and_correlated(self):
        bus = EventBus(clock=Clock())
        first = bus.emit("lease", "shard a leased", campaign_id="c1",
                         shard_key="a", worker_id="w1", attempt=2)
        second = bus.emit("complete", "shard a done")
        assert (first.seq, second.seq) == (1, 2)
        assert bus.last_seq == 2
        assert first.campaign_id == "c1" and first.shard_key == "a"
        assert first.data == {"attempt": 2}

    def test_ring_drops_oldest_and_counts(self):
        bus = EventBus(capacity=3)
        for i in range(5):
            bus.emit("k", f"event {i}")
        assert bus.dropped == 2
        assert [e.seq for e in bus.snapshot()] == [3, 4, 5]
        # An aged-out cursor resumes from the oldest retained event.
        assert [e.seq for e in bus.since(0)] == [3, 4, 5]

    def test_since_cursor_and_limit(self):
        bus = EventBus()
        for i in range(4):
            bus.emit("k", f"event {i}")
        assert [e.seq for e in bus.since(2)] == [3, 4]
        assert [e.seq for e in bus.since(0, limit=2)] == [1, 2]
        assert bus.since(99) == []

    def test_wait_for_timeout_and_wakeup(self):
        bus = EventBus()
        assert bus.wait_for(0, timeout=0.01) is False
        waiter_saw = []

        def wait():
            waiter_saw.append(bus.wait_for(0, timeout=5.0))

        t = threading.Thread(target=wait)
        t.start()
        bus.emit("k", "news")
        t.join(timeout=5.0)
        assert waiter_saw == [True]

    def test_metrics_mirroring(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.emit("lease", "one")
        bus.emit("lease", "two")
        bus.emit("complete", "three")
        assert registry.counter("events.total").value == 3
        assert registry.counter("events.lease").value == 2
        assert registry.counter("events.complete").value == 1

    def test_emit_never_raises_on_unsafe_data(self):
        bus = EventBus()
        event = bus.emit("k", "m", payload=object(), none_dropped=None,
                         nested={"x": (1, 2)})
        assert "none_dropped" not in event.data
        assert isinstance(event.data["payload"], str)
        assert event.data["nested"] == {"x": [1, 2]}
        json.dumps(event.as_dict())  # must be serialisable

    def test_bad_severity_downgraded_not_raised(self):
        bus = EventBus()
        assert bus.emit("k", "m", severity="catastrophic").severity == "info"

    def test_jsonl_round_trip(self, tmp_path):
        bus = EventBus(clock=Clock())
        bus.emit("a", "one", campaign_id="c1")
        bus.emit("b", "two", severity="warning", extra=7)
        path = bus.write_jsonl(tmp_path / "events.jsonl")
        loaded = load_event_log(path)
        assert [e.as_dict() for e in loaded] == bus.as_dicts()

    def test_load_rejects_bad_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema_version": 1, "seq": -3, "kind": "k"}\n')
        with pytest.raises(ValueError, match="seq"):
            load_event_log(path)
        with pytest.raises(ValueError):
            Event.from_dict({"seq": 1})


class TestDownsample:
    def test_under_budget_passes_through(self):
        pts = [(float(i), float(i * i)) for i in range(10)]
        assert downsample(pts, 10) == pts

    def test_keeps_exact_endpoints_and_budget(self):
        pts = [(float(i), 1.0) for i in range(1000)]
        out = downsample(pts, 50)
        assert len(out) <= 50
        assert out[0] == pts[0] and out[-1] == pts[-1]

    def test_bucket_mean(self):
        pts = [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
        out = downsample(pts, 3)
        assert out[0] == pts[0] and out[-1] == pts[-1]
        assert out[1] == (1.5, 15.0)  # mean of the two interior points

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            downsample([(0.0, 0.0)] * 5, 1)


# ------------------------------------------------------ incident mirroring


class TestIncidentBusMirroring:
    def test_incident_lands_on_bus_with_correlation(self):
        bus = EventBus()
        recorder = IncidentRecorder(bus=bus)
        recorder.record(
            "worker_hang", "worker went silent", severity="warning",
            campaign_id="c1", key="apache:64", worker_id="w1",
        )
        events = bus.snapshot()
        assert len(events) == 1
        event = events[0]
        assert event.kind == "incident"
        assert event.severity == "warning"
        assert event.campaign_id == "c1"
        assert event.shard_key == "apache:64"
        assert event.worker_id == "w1"
        assert event.data["incident_kind"] == "worker_hang"

    def test_recorder_without_bus_still_works(self):
        recorder = IncidentRecorder()
        recorder.record("k", "no bus attached")
        assert len(recorder) == 1


# ------------------------------------------------------- progress schemas


class TestShardProgress:
    def test_round_trip(self):
        progress = ShardProgress.from_dict(
            {"events_done": 4096, "workload": "apache", "backend": "batched"}
        )
        assert progress.events_done == 4096
        assert progress.as_dict() == {
            "events_done": 4096, "workload": "apache", "backend": "batched",
        }

    def test_defaults(self):
        assert ShardProgress.from_dict({}).events_done == 0

    @pytest.mark.parametrize(
        "bad",
        [
            {"events_done": -1},
            {"events_done": True},
            {"events_done": "12"},
            {"workload": 3},
            {"unknown_field": 1},
            "not a dict",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SchemaError):
            ShardProgress.from_dict(bad)

    def test_renew_request_carries_optional_progress(self):
        bare = RenewRequest.from_dict({"worker_id": "w1"})
        assert bare.progress is None
        rich = RenewRequest.from_dict(
            {"worker_id": "w1", "progress": {"events_done": 7}}
        )
        assert rich.progress.events_done == 7
        with pytest.raises(SchemaError):
            RenewRequest.from_dict({"worker_id": "w1", "progress": {"seq": 1}})


class TestProgressTracker:
    def test_tracker_accumulates_per_shard(self):
        tracker = _ProgressTracker()
        tracker.begin("apache", "batched")
        tracker.add(100)
        tracker.add(28)
        assert tracker.snapshot() == {
            "events_done": 128, "workload": "apache", "backend": "batched",
        }
        tracker.begin("memcached", "reference")
        assert tracker.snapshot()["events_done"] == 0

    def test_counted_stream_batches_and_flushes(self):
        seen = []
        out = list(_counted_stream(iter(range(10)), seen.append, every=4))
        assert out == list(range(10))
        assert seen == [4, 4, 2]
        assert sum(seen) == 10


# -------------------------------------------------- manager progress bank


class TestManagerTelemetry:
    def _manager(self, tmp_path):
        clock = Clock()
        manager = CampaignManager(tmp_path / "svc", policy=FAST, clock=clock)
        return manager, clock

    def test_lifecycle_events_emitted(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        spec = CampaignSpec.from_dict({"workloads": ["apache"], "abtb_sizes": [16]})
        cid = manager.submit(spec)
        worker_id = manager.register_worker("t")["worker_id"]
        manager.lease(worker_id)
        kinds = [e.kind for e in manager.bus.snapshot()]
        assert kinds == ["campaign_submitted", "worker_registered", "shard_leased"]
        leased = manager.bus.snapshot()[-1]
        assert leased.campaign_id == cid and leased.worker_id == worker_id

    def test_renew_banks_progress_into_lease_rows(self, tmp_path):
        manager, clock = self._manager(tmp_path)
        spec = CampaignSpec.from_dict({"workloads": ["apache"], "abtb_sizes": [16]})
        manager.submit(spec)
        worker_id = manager.register_worker("t")["worker_id"]
        grant = manager.lease(worker_id)
        clock.advance(2.0)
        renewed = manager.renew(
            grant["lease_id"], worker_id,
            progress={"events_done": 512, "workload": "apache",
                      "backend": "reference"},
        )
        assert renewed is not None
        clock.advance(1.0)
        rows = manager.leases()
        assert len(rows) == 1
        row = rows[0]
        assert row["worker_id"] == worker_id
        assert row["progress"]["events_done"] == 512
        assert row["progress"]["age_s"] == pytest.approx(1.0)
        # ...and into the worker roster for the dashboard.
        workers = manager.telemetry()["workers"]
        assert workers[0]["last_progress"]["events_done"] == 512
        assert workers[0]["last_progress"]["key"] == row["key"]
        # ...and onto the bus.
        assert manager.bus.snapshot()[-1].kind == "shard_progress"

    def test_telemetry_shape(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        spec = CampaignSpec.from_dict({"workloads": ["apache"], "abtb_sizes": [16]})
        manager.submit(spec)
        snap = manager.telemetry()
        assert set(snap) == {
            "campaigns", "leases", "workers", "incident_counts",
            "incidents", "last_seq",
        }
        assert snap["last_seq"] == manager.bus.last_seq
        assert snap["campaigns"][0]["state"] == "running"

    def test_queue_series_mirrored(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        spec = CampaignSpec.from_dict({"workloads": ["apache"], "abtb_sizes": [16]})
        manager.submit(spec)
        names = manager.metrics.names()
        assert "service.queue.pending" in names
        assert "service.queue.leased" in names
        series = manager.metrics.series("service.queue.pending")
        assert series.points()[-1][1] == 1.0


# ------------------------------------------------- prometheus exposition


def _parse_prometheus(text: str) -> dict:
    """A tiny exposition-format parser: family → {help, type, samples}."""
    families: dict[str, dict] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _, directive, name, rest = line.split(" ", 3)
            family = families.setdefault(name, {"samples": []})
            assert directive.lower() not in family, f"duplicate # {directive} {name}"
            family[directive.lower()] = rest
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        metric, value = line.rsplit(" ", 1)
        name = metric.split("{", 1)[0]
        family_name = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family_name = name[: -len(suffix)]
                break
        assert family_name in families, f"sample before # HELP/# TYPE: {line!r}"
        family = families[family_name]
        assert "help" in family and "type" in family, f"family {family_name} unannounced"
        float(value)  # must parse
        family["samples"].append((metric, float(value)))
    return families


class TestPrometheusExposition:
    def test_every_family_announced(self):
        registry = MetricsRegistry()
        registry.counter("requests.total", help="total requests").inc(5)
        registry.gauge("queue.depth").set(3)
        registry.histogram("latency.ms", buckets=(1.0, 5.0)).observe(2.5)
        registry.series("warmup.curve").append(0.0, 1.0)
        families = _parse_prometheus(registry.to_prometheus())
        for family in families.values():
            assert family["samples"], "family with no samples"
        by_type = {name: f["type"] for name, f in families.items()}
        assert by_type["requests_total"] == "counter"
        assert by_type["queue_depth"] == "gauge"
        assert by_type["latency_ms"] == "histogram"

    def test_histogram_buckets_complete(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency.ms", buckets=(1.0, 5.0))
        for value in (0.5, 2.0, 3.0, 99.0):
            hist.observe(value)
        families = _parse_prometheus(registry.to_prometheus())
        samples = dict(families["latency_ms"]["samples"])
        assert samples['latency_ms_bucket{le="1.0"}'] == 1
        assert samples['latency_ms_bucket{le="5.0"}'] == 3
        assert samples['latency_ms_bucket{le="+Inf"}'] == 4
        assert samples["latency_ms_count"] == 4
        assert samples["latency_ms_sum"] == pytest.approx(104.5)
        # Cumulative buckets are non-decreasing.
        buckets = [v for k, v in families["latency_ms"]["samples"] if "_bucket" in k]
        assert buckets == sorted(buckets)

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", help="line one\nback\\slash").inc()
        text = registry.to_prometheus()
        assert "# HELP c line one\\nback\\\\slash" in text

    def test_live_metrics_endpoint_parses(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        status, text = client.get_text("/metrics")
        assert status == 200
        families = _parse_prometheus(text)
        assert any(name.startswith("service_") for name in families)
        assert "events_total" in families


# ----------------------------------------------------------- http surface


@pytest.fixture()
def server(tmp_path):
    manager = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
    srv = ManagerServer(manager, port=0, sse_keepalive_s=0.1)
    srv.start()
    yield srv
    srv.stop(graceful=True)


def _raw_get(server, path, headers=None):
    """GET returning (status, headers, body-bytes) without json parsing."""
    import urllib.request

    req = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestEndpoints:
    def test_content_types(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        for path, expected in [
            ("/metrics", "text/plain; version=0.0.4"),
            ("/metrics?format=jsonl", "application/x-ndjson"),
            ("/incidents", "application/x-ndjson"),
            ("/events/log", "application/x-ndjson"),
            ("/timeseries", "application/json"),
            ("/dash", "text/html; charset=utf-8"),
            ("/dash/data", "application/json"),
        ]:
            _, headers, _ = _raw_get(server, path)
            assert headers["Content-Type"] == expected, path

    def test_unknown_resources_404(self, server):
        client = ManagerClient(server.url)
        assert client.get("/nonsense")[0] == 404
        assert client.get("/campaigns/c9999")[0] == 404
        assert client.get("/timeseries?name=no.such.series")[0] == 404

    def test_wrong_method_405(self, server):
        client = ManagerClient(server.url)
        status, body = client.get("/leases")  # POST-only resource
        assert status == 405 and body["allow"] == "POST"
        status, body = client.post("/metrics", {})  # GET-only resource
        assert status == 405 and body["allow"] == "GET"

    def test_metrics_jsonl_lines_parse(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        _, _, body = _raw_get(server, "/metrics?format=jsonl")
        lines = body.decode().strip().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert "name" in record and "kind" in record

    def test_events_log_and_since(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        _, _, body = _raw_get(server, "/events/log")
        records = [json.loads(line) for line in body.decode().strip().splitlines()]
        assert records and records[0]["kind"] == "campaign_submitted"
        first_seq = records[0]["seq"]
        _, _, body = _raw_get(server, f"/events/log?since={first_seq}")
        rest = [json.loads(line) for line in body.decode().strip().splitlines()]
        assert all(r["seq"] > first_seq for r in rest)

    def test_timeseries_window(self, server):
        manager = server.manager
        series = manager.metrics.series("test.curve")
        for i in range(500):
            series.append(float(i), float(i % 7))
        status, body = ManagerClient(server.url).get("/timeseries")
        assert status == 200 and "test.curve" in body["series"]
        status, body = ManagerClient(server.url).get(
            "/timeseries?name=test.curve&max_points=20"
        )
        assert status == 200
        assert body["downsampled"] is True
        assert len(body["points"]) <= 20
        assert body["total_points"] == 500
        status, body = ManagerClient(server.url).get(
            "/timeseries?name=test.curve&since=400"
        )
        assert body["total_points"] == 100
        assert all(p[0] >= 400 for p in body["points"])
        status, _ = ManagerClient(server.url).get(
            "/timeseries?name=test.curve&max_points=1"
        )
        assert status == 400

    def test_timeseries_rejects_non_series_metric(self, server):
        server.manager.metrics.counter("just.a.counter").inc()
        status, body = ManagerClient(server.url).get(
            "/timeseries?name=just.a.counter"
        )
        assert status == 404 and "not a series" in body["error"]


class TestSSE:
    def _frames(self, raw: str) -> list[dict]:
        frames = []
        for block in raw.split("\n\n"):
            if not block.startswith("id: "):
                continue
            id_line, data_line = block.split("\n", 1)
            assert data_line.startswith("data: ")
            payload = json.loads(data_line[len("data: "):])
            assert payload["seq"] == int(id_line[len("id: "):])
            frames.append(payload)
        return frames

    def test_framing_and_limit(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        for i in range(4):
            server.manager.bus.emit("test", f"event {i}")
        status, headers, body = _raw_get(server, "/events?limit=3")
        assert status == 200
        assert headers["Content-Type"] == "text/event-stream"
        assert headers["Cache-Control"] == "no-cache"
        frames = self._frames(body.decode())
        assert len(frames) == 3
        assert [f["seq"] for f in frames] == [1, 2, 3]

    def test_last_event_id_resume(self, server):
        for i in range(5):
            server.manager.bus.emit("test", f"event {i}")
        _, _, body = _raw_get(server, "/events?limit=2")
        first = self._frames(body.decode())
        cursor = first[-1]["seq"]
        _, _, body = _raw_get(
            server, "/events?limit=2", headers={"Last-Event-ID": str(cursor)}
        )
        resumed = self._frames(body.decode())
        assert [f["seq"] for f in resumed] == [cursor + 1, cursor + 2]

    def test_since_param_overrides_header(self, server):
        for i in range(5):
            server.manager.bus.emit("test", f"event {i}")
        _, _, body = _raw_get(
            server, "/events?limit=1&since=4", headers={"Last-Event-ID": "1"}
        )
        assert [f["seq"] for f in self._frames(body.decode())] == [5]

    def test_keepalive_comment_then_data(self, server):
        # Nothing on the bus: the stream must emit a keep-alive comment
        # (keepalive is 0.1s on this fixture), then the frame once news
        # arrives.
        def emit_later():
            import time as _time

            _time.sleep(0.35)
            server.manager.bus.emit("late", "breaking news")

        t = threading.Thread(target=emit_later)
        t.start()
        _, _, body = _raw_get(server, "/events?limit=1")
        t.join()
        raw = body.decode()
        assert ": keep-alive\n\n" in raw
        frames = self._frames(raw)
        assert len(frames) == 1 and frames[0]["kind"] == "late"


# -------------------------------------------------------------- dashboards


class TestDashboard:
    def test_live_page_embeds_snapshot(self, server):
        client = ManagerClient(server.url)
        _, body = client.post(
            "/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]}
        )
        cid = body["campaign_id"]
        _, _, page = _raw_get(server, "/dash")
        html = page.decode()
        assert "__SNAPSHOT__" not in html
        assert cid in html
        assert '"mode": "live"' in html
        assert "<script>" in html and "EventSource" in html

    def test_dash_data_is_the_snapshot(self, server):
        client = ManagerClient(server.url)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        status, snap = client.get("/dash/data")
        assert status == 200
        assert snap["mode"] == "live"
        assert snap["schema_version"] == 1
        assert snap["campaigns"][0]["state"] == "running"
        assert "service.queue.pending" in snap["series"]
        assert snap["events"][0]["kind"] == "campaign_submitted"

    def test_snapshot_from_manager_downsamples(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
        series = manager.metrics.series("big.curve")
        for i in range(2000):
            series.append(float(i), 1.0)
        snap = snapshot_from_manager(manager)
        assert len(snap["series"]["big.curve"]["points"]) <= 150
        assert snap["series"]["big.curve"]["appended"] == 2000

    def test_script_close_tag_escaped(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
        manager.bus.emit("k", "sneaky </script><script>alert(1)</script>")
        html = render_dashboard(snapshot_from_manager(manager))
        assert "</script><script>alert(1)" not in html

    def _write_artifacts(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("campaign.pairs_completed").inc(4)
        curve = registry.series("apache.abtb_hits_pki")
        for i in range(300):
            curve.append(float(i * 100), 20.0 + i / 10.0)
        (tmp_path / "metrics.jsonl").write_text(registry.to_jsonl())
        bus = EventBus(clock=Clock())
        bus.emit("pair_completed", "apache:64 done", campaign_id="c0001",
                 shard_key="apache:64")
        bus.write_jsonl(tmp_path / "events.jsonl")
        recorder = IncidentRecorder()
        recorder.record("worker_hang", "went silent", severity="warning")
        recorder.write_jsonl(tmp_path / "incidents.jsonl")
        profiler = TrampolineProfiler({0x1000: "apache:memcpy"})
        profiler.on_trampoline(0x1000, 0x2000, 0x3000, False, 12, True, False, False)
        profiler.write_json(tmp_path / "profile.json")

    def test_offline_snapshot_and_render(self, tmp_path):
        self._write_artifacts(tmp_path)
        snap = load_snapshot_from_dir(tmp_path)
        assert snap["mode"] == "offline"
        assert snap["counters"]["campaign.pairs_completed"] == 4
        assert len(snap["series"]["apache.abtb_hits_pki"]["points"]) <= 150
        assert snap["series"]["apache.abtb_hits_pki"]["appended"] == 300
        assert snap["incident_counts"] == {"worker_hang": 1}
        assert snap["events"][0]["kind"] == "pair_completed"
        assert snap["profile"]["sites"][0]["symbol"] == "apache:memcpy"
        html = render_dashboard(snap)
        assert "apache:memcpy" in html and "__SNAPSHOT__" not in html

    def test_offline_tolerates_empty_dir(self, tmp_path):
        snap = load_snapshot_from_dir(tmp_path)
        assert snap["series"] == {} and snap["events"] == []
        assert "<html" in render_dashboard(snap)

    def test_offline_skips_corrupt_lines(self, tmp_path):
        (tmp_path / "metrics.jsonl").write_text(
            'not json\n{"name": "c", "kind": "counter", "value": 2}\n'
        )
        (tmp_path / "profile.json").write_text("{broken")
        snap = load_snapshot_from_dir(tmp_path)
        assert snap["counters"] == {"c": 2.0}
        assert snap["profile"] is None

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot_from_dir(tmp_path / "nope")

    def test_write_dashboard_creates_parents(self, tmp_path):
        out = write_dashboard(
            load_snapshot_from_dir(tmp_path), tmp_path / "deep" / "dash.html"
        )
        assert out.is_file()

    def test_cli_dash_offline(self, tmp_path, capsys):
        self._write_artifacts(tmp_path)
        out = tmp_path / "dashboard.html"
        code = cli_main(["dash", "--from", str(tmp_path), "--out", str(out)])
        assert code == 0
        assert "dash: wrote" in capsys.readouterr().out
        assert "apache:memcpy" in out.read_text()

    def test_cli_dash_missing_dir(self, tmp_path, capsys):
        code = cli_main(["dash", "--from", str(tmp_path / "nope")])
        assert code == 1
        assert "error" in capsys.readouterr().err


# ------------------------------------------------- campaign-level events


class TestRunCampaignEvents:
    def test_serial_campaign_narrates_itself(self, tmp_path):
        bus = EventBus()
        result = run_campaign(
            ["apache"], SMOKE, abtb_sizes=(16,), bus=bus, campaign_id="c0001",
        )
        assert result.completed and not result.failed
        kinds = [e.kind for e in bus.snapshot()]
        assert kinds[0] == "campaign_started"
        assert "pair_completed" in kinds
        assert kinds[-1] == "campaign_complete"
        done = [e for e in bus.snapshot() if e.kind == "pair_completed"]
        assert done[0].campaign_id == "c0001"
        assert done[0].shard_key
        assert "speedup" in done[0].data

    def test_no_bus_no_events_no_error(self, tmp_path):
        result = run_campaign(["apache"], SMOKE, abtb_sizes=(16,))
        assert result.completed


# --------------------------------------------- worker heartbeat progress


class TestWorkerProgressEndToEnd:
    def test_worker_reports_progress_through_renew(self, tmp_path):
        """A real worker run banks progress on the manager before the
        shard completes, and the roster remembers it after the lease is
        gone."""
        # A short lease TTL makes the heartbeat renew every TTL/3 —
        # several renews land while even a smoke shard is running.
        policy = SupervisorPolicy(
            shard_deadline_s=1.0, max_shard_failures=3,
            backoff_base_s=0.1, backoff_factor=2.0, poll_interval_s=0.01,
        )
        manager = CampaignManager(tmp_path / "svc", policy=policy)
        server = ManagerServer(manager, port=0)
        server.start()
        try:
            client = ManagerClient(server.url)
            client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
            agent = WorkerAgent(
                ManagerClient(server.url), name="t",
                poll_interval_s=0.02, max_idle_s=0.5,
            )
            stats = agent.run()
            assert stats["shards_done"] == 1
            workers = manager.telemetry()["workers"]
            progress = workers[0]["last_progress"]
            assert progress is not None
            assert progress["events_done"] > 0
            assert progress["workload"] == "apache"
        finally:
            server.stop(graceful=True)
