"""Unit tests for the ABTB, Bloom filter and the skip mechanism."""

from __future__ import annotations

import pytest

from repro.core import ABTB, ABTB_ENTRY_BYTES, BloomFilter, MechanismConfig, TrampolineSkipMechanism
from repro.errors import ConfigError


class TestBloomFilter:
    def test_contains_after_add(self):
        bloom = BloomFilter(1024, 2)
        bloom.add(0x601018)
        assert bloom.maybe_contains(0x601018)

    def test_no_false_negatives(self):
        bloom = BloomFilter(4096, 3)
        keys = [0x601000 + 8 * i for i in range(200)]
        for k in keys:
            bloom.add(k)
        assert all(bloom.maybe_contains(k) for k in keys)

    def test_mostly_negative_when_sparse(self):
        bloom = BloomFilter(1 << 16, 4)
        bloom.add(0x601018)
        misses = sum(bloom.maybe_contains(0x700000 + 8 * i) for i in range(1000))
        assert misses <= 2  # false positives should be rare at this size

    def test_clear_empties(self):
        bloom = BloomFilter(1024, 2)
        bloom.add(0x601018)
        bloom.clear()
        assert not bloom.maybe_contains(0x601018)
        assert bloom.population == 0

    def test_duplicate_add_is_idempotent(self):
        # Regression: ``add`` used to bump the population on every call,
        # so re-inserting a hot GOT address inflated the analytic
        # false-positive estimate (the bitset itself never changed).
        bloom = BloomFilter(4096, 2)
        for _ in range(5):
            bloom.add(0x601018)
        assert bloom.population == 1
        bits_after_first = bloom.set_bits
        bloom.add(0x601018)
        assert bloom.set_bits == bits_after_first
        bloom.add(0x601020)
        assert bloom.population == 2

    def test_analytic_fp_estimate_matches_measurement(self):
        # 150 distinct keys, each inserted twice: duplicates must not
        # skew the estimate.  The analytic rate (1 - e^{-kn/m})^k and the
        # measured rate over a large disjoint probe set must agree.
        bloom = BloomFilter(4096, 2)
        for i in range(150):
            key = 0x601000 + 8 * i
            bloom.add(key)
            bloom.add(key)
        assert bloom.population == 150
        probes = 20_000
        hits = sum(
            bloom.maybe_contains(0x40_0000_0000 + 8 * i) for i in range(probes)
        )
        measured = hits / probes
        analytic = bloom.false_positive_rate
        assert analytic > 0
        assert abs(measured - analytic) <= 0.35 * analytic + 1e-3, (
            f"measured {measured:.5f} vs analytic {analytic:.5f}"
        )

    def test_false_positive_estimate_monotone(self):
        small = BloomFilter(256, 2)
        big = BloomFilter(1 << 16, 2)
        for i in range(100):
            small.add(i * 8)
            big.add(i * 8)
        assert small.false_positive_rate > big.false_positive_rate

    def test_set_bits_grow(self):
        bloom = BloomFilter(1024, 2)
        assert bloom.set_bits == 0
        bloom.add(1)
        assert 1 <= bloom.set_bits <= 2

    def test_storage_bytes(self):
        assert BloomFilter(8192, 2).storage_bytes == 1024

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            BloomFilter(1000, 2)  # not a power of two
        with pytest.raises(ConfigError):
            BloomFilter(1024, 0)


class TestABTB:
    def test_lookup_after_insert(self):
        abtb = ABTB(16)
        abtb.insert(0x401020, 0x7F0000, 0x601018)
        assert abtb.lookup(0x401020) == 0x7F0000

    def test_miss_returns_none(self):
        assert ABTB(16).lookup(0x401020) is None

    def test_insert_updates_existing(self):
        abtb = ABTB(16)
        abtb.insert(0x401020, 0x7F0000, 0x601018)
        abtb.insert(0x401020, 0x7F9999, 0x601018)
        assert abtb.lookup(0x401020) == 0x7F9999
        assert len(abtb) == 1

    def test_lru_eviction(self):
        abtb = ABTB(2)
        abtb.insert(1, 10, 100)
        abtb.insert(2, 20, 200)
        abtb.lookup(1)  # refresh 1
        abtb.insert(3, 30, 300)  # evicts 2
        assert 1 in abtb and 3 in abtb and 2 not in abtb
        assert abtb.evictions == 1

    def test_fifo_eviction(self):
        abtb = ABTB(2, policy="fifo")
        abtb.insert(1, 10, 100)
        abtb.insert(2, 20, 200)
        abtb.lookup(1)  # does NOT refresh under FIFO
        abtb.insert(3, 30, 300)  # evicts 1 (oldest inserted)
        assert 1 not in abtb and 2 in abtb and 3 in abtb

    def test_flush(self):
        abtb = ABTB(16)
        abtb.insert(1, 10, 100)
        abtb.flush()
        assert len(abtb) == 0 and abtb.flushes == 1

    def test_got_addresses(self):
        abtb = ABTB(16)
        abtb.insert(1, 10, 100)
        abtb.insert(2, 20, 200)
        assert abtb.got_addresses() == {100, 200}

    def test_storage_cost_matches_paper(self):
        assert ABTB(16).storage_bytes == 192  # the paper's 16-entry figure
        assert ABTB_ENTRY_BYTES == 12

    def test_hit_rate(self):
        abtb = ABTB(4)
        abtb.insert(1, 10, 100)
        abtb.lookup(1)
        abtb.lookup(2)
        assert abtb.hit_rate == 0.5

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ABTB(0)
        with pytest.raises(ConfigError):
            ABTB(4, policy="random")


class TestMechanism:
    def _mech(self, **kwargs) -> TrampolineSkipMechanism:
        return TrampolineSkipMechanism(MechanismConfig(**kwargs))

    def test_learn_then_map(self):
        mech = self._mech()
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        assert mech.mapped_target(0x401020) == 0x7F0000

    def test_store_to_tracked_got_flushes(self):
        mech = self._mech()
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        assert mech.snoop_store(0x601018)
        assert mech.mapped_target(0x401020) is None
        assert mech.stats.store_flushes == 1

    def test_store_elsewhere_does_not_flush(self):
        mech = self._mech()
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        assert not mech.snoop_store(0x12345678)
        assert mech.mapped_target(0x401020) == 0x7F0000

    def test_flush_clears_bloom_too(self):
        mech = self._mech()
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        mech.snoop_store(0x601018)
        # After the flush the filter is empty: the same store won't flush.
        assert not mech.snoop_store(0x601018)

    def test_empty_filter_never_flushes(self):
        mech = self._mech()
        assert not mech.snoop_store(0x601018)

    def test_coherence_invalidation_flushes(self):
        mech = self._mech()
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        assert mech.coherence_invalidate(0x601018)
        assert mech.stats.coherence_flushes == 1

    def test_context_switch_flushes_without_asid(self):
        mech = self._mech(asid_support=False)
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        mech.on_context_switch()
        assert mech.mapped_target(0x401020) is None
        assert mech.stats.context_flushes == 1

    def test_asid_retains_entries(self):
        mech = self._mech(asid_support=True)
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        mech.on_context_switch()
        assert mech.mapped_target(0x401020) == 0x7F0000

    def test_no_bloom_mode_ignores_stores(self):
        mech = self._mech(use_bloom=False)
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        assert not mech.snoop_store(0x601018)
        assert mech.mapped_target(0x401020) == 0x7F0000

    def test_explicit_invalidate(self):
        mech = self._mech(use_bloom=False)
        mech.learn(0x400100, 0x401020, 0x7F0000, 0x601018)
        mech.invalidate()
        assert mech.mapped_target(0x401020) is None
        assert mech.stats.explicit_flushes == 1

    def test_storage_includes_bloom_only_when_used(self):
        with_bloom = self._mech(abtb_entries=256, bloom_bits=8192)
        without = self._mech(abtb_entries=256, use_bloom=False)
        assert with_bloom.storage_bytes == 256 * 12 + 1024
        assert without.storage_bytes == 256 * 12

    def test_capacity_respected(self):
        mech = self._mech(abtb_entries=2)
        for i in range(5):
            mech.learn(0x100 + i, 0x200 + i, 0x300 + i, 0x400 + 8 * i)
        assert len(mech.abtb) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MechanismConfig(abtb_entries=0)
        with pytest.raises(ConfigError):
            MechanismConfig(bloom_bits=4)
