"""Tests for the experiment registry and the experiment implementations.

Full-scale shape checks run in the benchmark harness; here each
experiment is exercised at a tiny scale to validate mechanics (correct
tables, sane values) plus the scale-independent shape assertions.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiments, get
from repro.experiments.scale import SMOKE, Scale
from repro.experiments import ablation, fig4, fig5, fig7, hwcost, memsave, table2, table3

TINY = Scale(
    "tiny",
    {"apache": (3, 10), "memcached": (15, 80), "mysql": (3, 8), "firefox": (1, 4)},
)

EXPECTED_IDS = {
    "table2",
    "table3",
    "fig4",
    "table4",
    "fig5",
    "fig6",
    "table5",
    "fig7",
    "fig8_table6",
    "memsave",
    "hwcost",
    "ablation",
}


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_get_known(self):
        assert get("table2").experiment_id == "table2"

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get("table99")

    def test_experiments_have_descriptions(self):
        for exp in all_experiments().values():
            assert exp.description and exp.paper_ref


class TestTable2:
    def test_pki_ordering(self):
        pki = table2.measure_pki(TINY)
        assert pki["apache"] > pki["mysql"] > pki["memcached"] > pki["firefox"]

    def test_report_renders(self):
        report = table2.run(TINY)
        assert "Table 2" in report.render()
        assert len(report.tables[0].rows) == 4


class TestTable3:
    def test_distinct_counts_positive(self):
        measured = table3.measure_distinct(TINY)
        assert all(d > 0 for d, _ in measured.values())

    def test_memcached_tiny_set(self):
        measured = table3.measure_distinct(TINY)
        assert measured["memcached"][0] <= 33


class TestFig4:
    def test_curves_descend(self):
        curves = fig4.frequency_curves(TINY)
        for curve in curves.values():
            assert curve == sorted(curve, reverse=True)

    def test_memcached_head_concentration_strongest(self):
        # At tiny scales the zipf-tail estimators are noisy, but
        # memcached's per-request core dominates at any scale.
        curves = fig4.frequency_curves(TINY)
        share = {
            name: sum(curve[:10]) / (sum(curve) or 1) for name, curve in curves.items()
        }
        assert share["memcached"] > share["firefox"]


class TestFig5:
    def test_skip_grows_with_abtb(self):
        small = fig5.skip_fraction("memcached", 2, TINY)
        large = fig5.skip_fraction("memcached", 128, TINY)
        assert large >= small
        assert large > 0.8

    def test_single_entry_still_skips_some(self):
        assert fig5.skip_fraction("memcached", 1, TINY) > 0.0


class TestFig7:
    def test_peaks_shift_left(self):
        samples = fig7.measure(TINY)
        for name, (base_kc, enh_kc) in samples.items():
            assert sum(enh_kc) / len(enh_kc) <= sum(base_kc) / len(base_kc)


class TestHwcost:
    def test_storage_numbers(self):
        rows = hwcost.storage_table()
        table = dict((n, (full, enc)) for n, full, enc in rows)
        assert table[16] == (192, 96)
        assert table[256] == (3072, 1536)

    def test_report_all_shapes_hold(self):
        assert hwcost.run(TINY).all_shapes_hold


class TestMemsave:
    def test_patch_after_fork_wastes_memory(self):
        after, before, hardware = memsave.measure(TINY, processes=4)
        assert after["per_process_bytes"] > 0
        assert after["total_bytes"] >= after["pages_patched"] * 4096
        assert before["per_process_bytes"] == 0
        assert hardware["total_bytes"] == 0

    def test_eager_patching_resolves_everything(self):
        _, before, _ = memsave.measure(TINY, processes=2)
        assert before["sites_resolved_eagerly"] > 1000  # 501 pairs * 3 sites


class TestFig6Fig8Table5Measure:
    def test_fig6_measures_classes(self):
        from repro.experiments import fig6

        samples = fig6.measure(TINY)
        # TINY draws may miss a rare class; most must be present.
        assert len(samples) >= 4
        for base_us, enh_us in samples.values():
            assert len(base_us) == len(enh_us) > 0

    def test_fig8_cdfs_dominate_sanely(self):
        from repro.experiments import fig8

        cdfs = fig8.measure(TINY)
        assert set(cdfs) == {"New Order", "Payment"}
        for base_cdf, enh_cdf in cdfs.values():
            assert enh_cdf.percentile(50) <= base_cdf.percentile(50) * 1.05

    def test_table5_scores_positive(self):
        from repro.experiments import table5

        scores = table5.measure(TINY)
        assert len(scores) >= 3  # TINY draws may miss rare categories
        assert all(b > 0 and e > 0 for b, e in scores.values())


class TestAblation:
    def test_bloom_sweep_shows_cliff(self):
        sweep = ablation.bloom_sweep(TINY)
        smallest, largest = sweep[0], sweep[-1]
        assert smallest[2] > largest[2]  # more false flushes when small
        assert smallest[1] <= largest[1] + 0.02  # and no better skip rate

    def test_explicit_invalidate_safe(self):
        with_bloom, without = ablation.explicit_invalidate_study(TINY)
        assert without.mechanism.stats.unsafe_skips == 0
        assert abs(without.skip_rate - with_bloom.skip_rate) < 0.1


@pytest.mark.slow
class TestFullSmokeShapes:
    """The complete shape-check battery at SMOKE scale (slow; also run by
    the benchmark harness)."""

    @pytest.mark.parametrize("eid", sorted(EXPECTED_IDS))
    def test_shapes_hold(self, eid):
        report = get(eid).run(SMOKE)
        failed = [name for name, ok in report.shape_checks.items() if not ok]
        assert not failed, f"{eid}: failed shape checks: {failed}"
