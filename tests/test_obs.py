"""Tests for the observability layer: tracer, metrics, sampler, profiler.

Covers the three pillars of :mod:`repro.obs` plus their wiring into the
simulator — including the acceptance-level properties: the ``profile``
path attributes ≥90% of trampoline instructions to named call sites, and
a compare run's ``abtb_hits_pki`` series shows the ABTB warm-up
transient (monotone rise, then a stable plateau).
"""

from __future__ import annotations

import json

import pytest

from repro import quick_comparison
from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.obs import Observability, emit_request_spans
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PerfCounterSampler,
    TimeSeries,
    sampled,
    warmup_shape,
)
from repro.obs.profiler import TrampolineProfiler
from repro.obs.tracer import HOST_PID, SIM_PID, Tracer, validate_chrome_trace
from repro.uarch import CPU, PerfCounters
from repro.uarch.cpu import ChainedHooks, CPUHooks
from repro.workloads import ALL_WORKLOADS, Workload


def fake_clock():
    """A deterministic microsecond clock for tracer tests."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += 10.0
        return state["t"]

    return clock


class TestTracer:
    def test_instant_defaults_to_host_clock(self):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("resolve foo", category="linker", symbol="foo")
        (ev,) = tracer.events
        assert ev["ph"] == "i"
        assert ev["pid"] == HOST_PID
        assert ev["args"]["symbol"] == "foo"

    def test_instant_with_explicit_ts_lands_on_sim_track(self):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("fault:got_rewrite", ts=12345.0)
        assert tracer.events[0]["pid"] == SIM_PID
        assert tracer.events[0]["ts"] == 12345.0

    def test_span_measures_duration(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("experiment table4", category="experiment"):
            pass
        (ev,) = tracer.events
        assert ev["ph"] == "X"
        assert ev["dur"] == pytest.approx(10.0)
        assert ev["pid"] == HOST_PID

    def test_span_records_even_on_exception(self):
        tracer = Tracer(clock=fake_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer.events) == 1 and tracer.events[0]["name"] == "doomed"

    def test_complete_is_simulated_clock(self):
        tracer = Tracer(clock=fake_clock())
        tracer.complete("request:GET", ts=1000.0, dur=250.0, request_id=7)
        (ev,) = tracer.events
        assert ev["pid"] == SIM_PID and ev["dur"] == 250.0

    def test_to_chrome_validates_and_round_trips(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        tracer.thread_name(3, "memcached")
        tracer.instant("a")
        with tracer.span("b"):
            tracer.counter("pki", 1.5, ts=10.0)
        payload = tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        path = tmp_path / "out.trace.json"
        tracer.write(str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]
        assert validate_chrome_trace({}) == ["'traceEvents' missing or not a list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 1},
                    {"name": "y", "ph": "X", "ts": 0, "pid": 1, "tid": 1},
                    {"ph": "i", "ts": "soon", "pid": 1, "tid": 1},
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("without 'dur'" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("non-numeric ts" in p for p in problems)


class TestMetricsPrimitives:
    def test_counter_monotone(self):
        c = Counter("faults")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("occupancy")
        g.set(10)
        g.inc(-3)
        assert g.value == 7.0

    def test_histogram_buckets(self):
        h = Histogram("latency", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4 and h.sum == pytest.approx(555.5)
        assert h.cumulative_counts() == [1, 2, 3]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("bad", buckets=(10.0, 1.0))

    def test_series_ring_buffer_drops_old_points(self):
        s = TimeSeries("pki", capacity=3)
        for i in range(5):
            s.append(float(i), float(i * 10))
        assert len(s) == 3
        assert s.appended == 5
        assert s.timestamps() == [2.0, 3.0, 4.0]
        assert s.values() == [20.0, 30.0, 40.0]


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")

    def test_jsonl_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.series("b").append(1.0, 0.5)
        reg.histogram("c", buckets=(1.0,)).observe(0.5)
        records = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["a"]["value"] == 2.0
        assert by_name["b"]["points"] == [[1.0, 0.5]]
        assert by_name["c"]["buckets"] == [{"le": 1.0, "count": 1}]

    def test_prometheus_export_shape(self):
        reg = MetricsRegistry()
        reg.counter("chaos.faults.total", help="faults landed").inc(3)
        reg.series("warmup").append(1.0, 2.5)
        text = reg.to_prometheus()
        assert "# HELP chaos_faults_total faults landed" in text
        assert "# TYPE chaos_faults_total counter" in text
        assert "chaos_faults_total 3.0" in text
        # Series export their latest value as a point-in-time gauge.
        assert "warmup 2.5" in text

    def test_write_selects_format_by_extension(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        prom, jsonl = tmp_path / "m.prom", tmp_path / "m.jsonl"
        reg.write(str(prom))
        reg.write(str(jsonl))
        assert "# TYPE n counter" in prom.read_text()
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "n"


class TestSampler:
    def test_rejects_unknown_fields_and_bad_interval(self):
        cpu = CPU()
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown counter field"):
            PerfCounterSampler(cpu, reg, every=100, fields=("bogus",))
        with pytest.raises(ValueError, match="positive"):
            PerfCounterSampler(cpu, reg, every=0)

    def test_sampling_produces_series_and_final_point(self):
        wl = Workload(ALL_WORKLOADS["memcached"].config())
        cpu = CPU()
        reg = MetricsRegistry()
        sampler = PerfCounterSampler(cpu, reg, every=2000, prefix="run.")
        cpu.run(sampled(wl.trace(10), sampler))
        assert sampler.samples_taken >= 2
        series = reg.series("run.l1i_misses_pki")
        assert len(series) == sampler.samples_taken
        # Timestamps are instruction counts: strictly increasing.
        ts = series.timestamps()
        assert ts == sorted(ts) and len(set(ts)) == len(ts)
        # Windowed and cumulative variants both exist, plus CPI.
        assert "run.l1i_misses_pki_window" in reg.names()
        assert "run.cpi" in reg.names()

    def test_sampler_feeds_tracer_counter_track(self):
        wl = Workload(ALL_WORKLOADS["memcached"].config())
        cpu = CPU()
        reg = MetricsRegistry()
        tracer = Tracer(clock=fake_clock())
        sampler = PerfCounterSampler(cpu, reg, every=5000, tracer=tracer)
        cpu.run(sampled(wl.trace(5), sampler))
        tracks = [ev for ev in tracer.events if ev["ph"] == "C"]
        assert tracks and all(ev["pid"] == SIM_PID for ev in tracks)


class TestWarmupShape:
    def test_accepts_rise_then_plateau(self):
        values = [0.2, 0.5, 0.9, 1.2, 1.3, 1.31, 1.29, 1.30, 1.31, 1.30]
        assert warmup_shape(values)

    def test_rejects_flat_series(self):
        assert not warmup_shape([1.0] * 10)

    def test_rejects_unstable_tail(self):
        assert not warmup_shape([0.2, 0.6, 1.0, 1.4, 0.9, 1.6, 0.8, 1.7])

    def test_rejects_big_dip(self):
        assert not warmup_shape([0.2, 1.0, 0.4, 1.2, 1.3, 1.3, 1.3, 1.3])

    def test_rejects_too_short(self):
        assert not warmup_shape([0.1, 1.0, 1.0])


class TestProfiler:
    def _feed(self, profiler):
        # Two sites: one hot (executes + skips), one hit once.
        for _ in range(3):
            profiler.on_trampoline(0x400010, 0x601000, 0x700000, False, 2, True, False, True)
        for _ in range(5):
            profiler.on_trampoline(0x400010, 0x601000, 0x700000, True, 0, False, True, False)
        profiler.on_trampoline(0x400020, 0x601010, 0x700100, False, 2, True, False, False)

    def test_accumulation_and_rates(self):
        profiler = TrampolineProfiler({0x400010: "app:memcpy"})
        self._feed(profiler)
        hot = profiler.sites[0x400010]
        assert hot.calls == 8 and hot.skipped == 5 and hot.instructions == 6
        assert hot.skip_rate == pytest.approx(5 / 8)
        assert hot.abtb_hit_rate == pytest.approx(5 / 8)
        assert hot.mispredictions == 3

    def test_attribution_counts_only_named_sites(self):
        profiler = TrampolineProfiler({0x400010: "app:memcpy"})
        self._feed(profiler)
        assert profiler.total_instructions() == 8
        assert profiler.attributed_instructions() == 6
        assert profiler.attribution_fraction() == pytest.approx(6 / 8)

    def test_table_orders_hot_sites_first(self):
        profiler = TrampolineProfiler({0x400010: "app:memcpy"})
        self._feed(profiler)
        table = profiler.table(top=2)
        assert table.column("symbol")[0] == "app:memcpy"
        rendered = table.render()
        assert "app:memcpy" in rendered and "skip%" in rendered

    def test_real_run_attributes_at_least_90_percent(self):
        """Acceptance: the profile path attributes ≥90% of the CPU's
        trampoline_instructions counter to named call sites."""
        obs = Observability(profile=True)
        wl = Workload(ALL_WORKLOADS["memcached"].config())
        obs.attach_workload(wl)
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=256))
        cpu = CPU(mechanism=mech, hooks=obs.hooks())
        cpu.run(wl.trace(80))
        counters = cpu.finalize()
        assert counters.trampoline_instructions > 0
        assert obs.profiler.attribution_fraction(counters) >= 0.90


class TestObservabilitySession:
    def test_from_flags_returns_none_when_all_off(self):
        class Args:
            trace_out = None
            metrics_out = None
            sample_every = 0

        assert Observability.from_flags(Args()) is None

    def test_disabled_session_is_a_null_sink(self):
        obs = Observability()
        assert not obs.enabled
        assert obs.hooks() is None
        events = iter([])
        # No sampling configured: the stream comes back unwrapped.
        assert obs.instrument(events, CPU(), "x") is events
        assert obs.export() == []

    def test_hooks_chain_profiler_with_extras(self):
        obs = Observability(profile=True)
        extra = CPUHooks()
        chained = obs.hooks(extra)
        assert isinstance(chained, ChainedHooks)
        assert obs.hooks() is obs.profiler
        assert obs.hooks(None) is obs.profiler

    def test_compare_series_shows_abtb_warmup_transient(self, tmp_path):
        """Acceptance: the enhanced run's cumulative abtb_hits_pki rises
        monotonically (modulo early sampling noise) then plateaus."""
        obs = Observability(
            metrics_out=str(tmp_path / "m.jsonl"), sample_every=8000
        )
        quick_comparison("memcached", n_requests=80, obs=obs)
        values = obs.metrics.series("enhanced.abtb_hits_pki").values()
        assert len(values) >= 10
        # Cold ABTB: low initial hit rate, >2x rise to a stable plateau.
        assert values[-1] / values[0] > 2.0
        assert warmup_shape(values, dip_tol=0.3)
        # The base CPU has no ABTB: its series must stay at zero.
        base = obs.metrics.series("base.abtb_hits_pki").values()
        assert all(v == 0.0 for v in base)

    def test_export_writes_trace_and_metrics(self, tmp_path):
        trace, metrics = tmp_path / "t.json", tmp_path / "m.jsonl"
        obs = Observability(
            trace_out=str(trace), metrics_out=str(metrics), sample_every=4000
        )
        quick_comparison("memcached", n_requests=20, obs=obs)
        written = obs.export()
        assert written == [str(trace), str(metrics)]
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        cats = {ev.get("cat") for ev in payload["traceEvents"]}
        # Linker instants, request spans and counter tracks all landed.
        assert {"linker", "engine", "request", "metric"} <= cats

    def test_request_spans_pair_begin_and_end_marks(self):
        obs = Observability(trace_out="unused.json")
        wl = Workload(ALL_WORKLOADS["memcached"].config())
        cpu = CPU()
        cpu.run(wl.trace(6))
        emitted = emit_request_spans(obs.tracer, cpu, tid=1)
        spans = [ev for ev in obs.tracer.events if ev["ph"] == "X"]
        assert emitted == len(spans) > 0
        assert all(ev["pid"] == SIM_PID and ev["dur"] >= 0 for ev in spans)


class TestCounterHelpers:
    def test_pki_unknown_field_names_valid_fields(self):
        counters = PerfCounters()
        counters.instructions = 1000
        with pytest.raises(ValueError) as excinfo:
            counters.pki("no_such_counter")
        message = str(excinfo.value)
        assert "no_such_counter" in message
        assert "l1i_misses" in message and "abtb_hits" in message

    def test_rate_defaults_to_per_instruction(self):
        counters = PerfCounters()
        counters.instructions = 200
        counters.got_loads = 50
        assert counters.rate("got_loads") == pytest.approx(0.25)

    def test_rate_with_custom_denominator(self):
        counters = PerfCounters()
        counters.cycles = 400
        counters.l1i_misses = 100
        assert counters.rate("l1i_misses", per="cycles") == pytest.approx(0.25)

    def test_rate_zero_denominator_is_zero(self):
        assert PerfCounters().rate("got_loads") == 0.0

    def test_rate_validates_both_fields(self):
        counters = PerfCounters()
        with pytest.raises(ValueError, match="unknown counter field"):
            counters.rate("bogus")
        with pytest.raises(ValueError, match="unknown counter field"):
            counters.rate("got_loads", per="bogus")


class TestBloomQueryAccounting:
    """``bloom.queries`` must count every snoop probe, empty filter or not.

    Regression: ``snoop_store``/``coherence_invalidate`` used to gate the
    probe on ``self.bloom.population and ...``, so every store retired
    while the filter was empty (the common steady state after a flush)
    vanished from the query counter and any probe-rate series built on it
    undercounted.  Hardware snoops every store; the counter must too.
    """

    def test_snoop_store_counts_empty_filter_probe(self):
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
        assert mech.bloom.population == 0
        mech.snoop_store(0x601018)
        assert mech.bloom.queries == 1
        assert mech.stats.store_flushes == 0  # probed, not flushed

    def test_coherence_invalidate_counts_empty_filter_probe(self):
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
        mech.coherence_invalidate(0x601018)
        assert mech.bloom.queries == 1
        assert mech.stats.coherence_flushes == 0

    def test_queries_accumulate_across_flush(self):
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
        mech.learn(0x400100, 0x401020, 0x7F0000_0000, 0x601018)
        mech.snoop_store(0x601018)  # populated probe: hit + flush
        assert mech.stats.store_flushes == 1
        queries_at_flush = mech.bloom.queries
        mech.snoop_store(0x601018)  # filter now empty — still a probe
        mech.snoop_store(0x999999)
        assert mech.bloom.queries == queries_at_flush + 2
