"""Unit tests for modules, layout and the dynamic linker."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError, LinkError
from repro.linker import (
    GOT_RESERVED_SLOTS,
    GOT_SLOT_SIZE,
    PLT_ENTRY_SIZE,
    ClassicLayout,
    CompatLayout,
    DynamicLinker,
    FunctionSpec,
    ModuleSpec,
    REL32_REACH,
    StaticLinker,
    SymbolKind,
    within_rel32,
)
from tests.conftest import tiny_specs


class TestModuleSpec:
    def test_duplicate_function_rejected(self):
        with pytest.raises(LinkError):
            ModuleSpec("m", [FunctionSpec("f", 64), FunctionSpec("f", 64)])

    def test_duplicate_import_rejected(self):
        with pytest.raises(LinkError):
            ModuleSpec("m", [], imports=["a", "a"])

    def test_plt_size_includes_plt0(self):
        spec = ModuleSpec("m", [], imports=["a", "b", "c"])
        assert spec.plt_size == PLT_ENTRY_SIZE * 4

    def test_got_size_includes_reserved(self):
        spec = ModuleSpec("m", [], imports=["a"])
        assert spec.got_size == GOT_SLOT_SIZE * (GOT_RESERVED_SLOTS + 1)

    def test_ifunc_variants_add_text(self):
        plain = ModuleSpec("m", [FunctionSpec("f", 100)])
        ifunc = ModuleSpec(
            "m", [FunctionSpec("f", 100, SymbolKind.IFUNC, ifunc_variants=3)]
        )
        assert ifunc.text_size == plain.text_size * 4  # resolver + 3 variants

    def test_function_too_small_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", 4)


class TestModuleImage:
    def test_plt_entries_are_16_bytes_apart(self, tiny_program):
        app = tiny_program.module("app")
        addrs = [app.plt_entry(s) for s in app.imports()]
        assert all(b - a == PLT_ENTRY_SIZE for a, b in zip(addrs, addrs[1:]))

    def test_four_plt_stubs_per_cache_line(self, tiny_program):
        assert 64 // PLT_ENTRY_SIZE == 4

    def test_got_slots_are_8_bytes_apart(self, tiny_program):
        app = tiny_program.module("app")
        addrs = [app.got_slot(s) for s in app.imports()]
        assert all(b - a == GOT_SLOT_SIZE for a, b in zip(addrs, addrs[1:]))

    def test_plt0_precedes_stubs(self, tiny_program):
        app = tiny_program.module("app")
        assert app.plt0_address() < app.plt_entry(app.imports()[0])

    def test_push_address_inside_stub(self, tiny_program):
        app = tiny_program.module("app")
        stub = app.plt_entry("printf")
        assert stub < app.plt_push_address("printf") < stub + PLT_ENTRY_SIZE

    def test_unknown_import_raises(self, tiny_program):
        with pytest.raises(LinkError):
            tiny_program.module("app").plt_entry("nope")

    def test_unknown_function_raises(self, tiny_program):
        with pytest.raises(LinkError):
            tiny_program.module("app").function("nope")

    def test_contains_plt(self, tiny_program):
        app = tiny_program.module("app")
        assert app.contains_plt(app.plt_entry("printf"))
        assert not app.contains_plt(app.function("main").entry)

    def test_functions_laid_out_in_order(self, tiny_program):
        app = tiny_program.module("app")
        assert app.function("main").entry < app.function("handler").entry


class TestLayouts:
    def test_classic_puts_libraries_high(self, tiny_program):
        app = tiny_program.module("app")
        libc = tiny_program.module("libc.so")
        assert libc.text_base > app.text_base
        assert libc.text_base > 0x7F00_0000_0000

    def test_classic_layout_beyond_rel32(self, tiny_program):
        app = tiny_program.module("app")
        libc = tiny_program.module("libc.so")
        site = app.function("main").entry + 32
        assert not within_rel32(site, libc.function("printf").entry)

    def test_compat_layout_within_rel32(self):
        exe, libs = tiny_specs()
        program = DynamicLinker().link(exe, libs, CompatLayout())
        site = program.module("app").function("main").entry + 32
        assert within_rel32(site, program.module("libc.so").function("printf").entry)

    def test_aslr_randomises_library_bases(self):
        exe, libs = tiny_specs()
        prog_a = DynamicLinker().link(exe, libs, ClassicLayout(aslr=True, seed=1))
        exe, libs = tiny_specs()
        prog_b = DynamicLinker().link(exe, libs, ClassicLayout(aslr=True, seed=2))
        assert (
            prog_a.module("libc.so").text_base != prog_b.module("libc.so").text_base
        )

    def test_aslr_deterministic_per_seed(self):
        exe, libs = tiny_specs()
        a = DynamicLinker().link(exe, libs, ClassicLayout(aslr=True, seed=7))
        exe, libs = tiny_specs()
        b = DynamicLinker().link(exe, libs, ClassicLayout(aslr=True, seed=7))
        assert a.module("libc.so").text_base == b.module("libc.so").text_base

    def test_no_section_overlap(self, tiny_program):
        ranges = []
        for image in tiny_program.modules.values():
            ranges.append(image.text_range)
            ranges.append(image.plt_range)
            ranges.append(image.got_range)
        ranges.sort()
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi <= lo

    def test_compat_window_exhaustion(self):
        huge = ModuleSpec("big.so", [FunctionSpec("f", REL32_REACH // 2)])
        huge2 = ModuleSpec("big2.so", [FunctionSpec("g", REL32_REACH // 2)])
        layout = CompatLayout()
        layout.place_executable(ModuleSpec("app", [FunctionSpec("main", 64)]))
        layout.place_library(huge)
        with pytest.raises(LayoutError):
            layout.place_library(huge2)


class TestDynamicLinker:
    def test_undefined_import_rejected(self):
        exe = ModuleSpec("app", [FunctionSpec("main", 64)], imports=["missing"])
        with pytest.raises(LinkError):
            DynamicLinker().link(exe, [])

    def test_duplicate_module_names_rejected(self):
        exe, libs = tiny_specs()
        with pytest.raises(LinkError):
            DynamicLinker().link(exe, libs + [libs[0]])

    def test_symbols_resolve_to_defining_module(self, tiny_program):
        sym = tiny_program.symbols.lookup("printf")
        assert sym.module == "libc.so"
        assert sym.address == tiny_program.module("libc.so").function("printf").entry

    def test_interposition_first_definition_wins(self):
        lib1 = ModuleSpec("one.so", [FunctionSpec("dup", 64)])
        lib2 = ModuleSpec("two.so", [FunctionSpec("dup", 64)])
        exe = ModuleSpec("app", [FunctionSpec("main", 64)], imports=["dup"])
        program = DynamicLinker().link(exe, [lib1, lib2])
        assert program.symbols.lookup("dup").module == "one.so"

    def test_lazy_binding_first_call(self, tiny_program):
        binding = tiny_program.bind_call("app", "printf")
        assert binding.first_call
        assert binding.resolver_instructions > 0
        assert binding.via_plt

    def test_second_call_already_resolved(self, tiny_program):
        tiny_program.bind_call("app", "printf")
        binding = tiny_program.bind_call("app", "printf")
        assert not binding.first_call
        assert binding.resolver_instructions == 0

    def test_resolution_is_per_module(self, tiny_program):
        tiny_program.bind_call("app", "memcpy")
        binding = tiny_program.bind_call("libx.so", "memcpy")
        assert binding.first_call  # each module has its own GOT slot

    def test_bound_target_is_function_entry(self, tiny_program):
        binding = tiny_program.bind_call("app", "printf")
        assert binding.func_addr == tiny_program.module("libc.so").function("printf").entry

    def test_calling_unimported_symbol_raises(self, tiny_program):
        with pytest.raises(LinkError):
            tiny_program.bind_call("app", "strlen")  # app does not import it

    def test_bind_now_resolves_everything(self, tiny_program):
        count = tiny_program.bind_now()
        assert count == 5  # app: 3 imports, libx: 2
        assert tiny_program.resolved_count() == 5

    def test_got_value_transitions(self, tiny_program):
        assert tiny_program.got_value("app", "printf") is None
        tiny_program.bind_call("app", "printf")
        assert tiny_program.got_value("app", "printf") is not None

    def test_resolution_log_order(self, tiny_program):
        tiny_program.bind_call("app", "x_parse")
        tiny_program.bind_call("app", "printf")
        assert tiny_program.resolution_log == [("app", "x_parse"), ("app", "printf")]


class TestUnload:
    def test_unload_resets_got_slots(self, tiny_program):
        tiny_program.bind_call("app", "printf")
        reset = tiny_program.unload_library("libc.so")
        assert ("app", "printf") in [(m, s) for m, s, _ in reset]
        assert "libc.so" not in tiny_program.modules

    def test_unload_reports_got_addresses(self, tiny_program):
        app = tiny_program.module("app")
        expected_got = app.got_slot("printf")
        tiny_program.bind_call("app", "printf")
        reset = tiny_program.unload_library("libc.so")
        assert any(g == expected_got for _, _, g in reset)

    def test_unload_unknown_module_raises(self, tiny_program):
        with pytest.raises(LinkError):
            tiny_program.unload_library("nope.so")

    def test_unresolved_slots_not_reported(self, tiny_program):
        reset = tiny_program.unload_library("libc.so")
        assert reset == []  # nothing was resolved yet


class TestIfunc:
    def _program(self, hwcap: int):
        libc = ModuleSpec(
            "libc.so",
            [FunctionSpec("memcpy", 128, SymbolKind.IFUNC, ifunc_variants=3)],
        )
        exe = ModuleSpec("app", [FunctionSpec("main", 64)], imports=["memcpy"])
        return DynamicLinker().link(exe, [libc], hwcap_level=hwcap)

    def test_ifunc_selects_variant_by_hwcap(self):
        targets = {self._program(h).bind_call("app", "memcpy").func_addr for h in range(3)}
        assert len(targets) == 3

    def test_ifunc_resolution_costs_extra(self):
        plain_libc = ModuleSpec("libc.so", [FunctionSpec("memcpy", 128)])
        exe = ModuleSpec("app", [FunctionSpec("main", 64)], imports=["memcpy"])
        plain = DynamicLinker().link(exe, [plain_libc]).bind_call("app", "memcpy")
        ifunc = self._program(0).bind_call("app", "memcpy")
        assert ifunc.resolver_instructions > plain.resolver_instructions

    def test_ifunc_variant_is_stable_after_resolution(self):
        program = self._program(1)
        first = program.bind_call("app", "memcpy").func_addr
        second = program.bind_call("app", "memcpy").func_addr
        assert first == second


class TestStaticLinker:
    def test_static_has_no_plt(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        binding = program.bind_call("app", "printf")
        assert not binding.via_plt
        assert binding.plt_addr == 0 and binding.got_addr == 0

    def test_static_resolves_all_imports(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        for sym in ("printf", "x_parse", "memcpy"):
            assert program.bind_call("app", sym).func_addr > 0

    def test_static_undefined_symbol_raises(self):
        exe = ModuleSpec("app", [FunctionSpec("main", 64)], imports=["missing"])
        with pytest.raises(LinkError):
            StaticLinker().link(exe, [])

    def test_static_text_is_contiguous_low(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        entries = [
            img.function(f.name).entry
            for img in program.modules.values()
            for f in img.spec.functions
        ]
        assert max(entries) - min(entries) < (1 << 22)  # all within 4 MB

    def test_static_never_first_call(self):
        exe, libs = tiny_specs()
        program = StaticLinker().link(exe, libs)
        assert not program.bind_call("app", "printf").first_call
