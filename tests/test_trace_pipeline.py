"""Tests for the numpy-native trace pipeline.

The pipeline's contract, end to end: array-native generation emits
event-for-event (and serialised byte-for-byte) what the legacy iterator
generators emit; the codec round-trips every field of every event kind;
the batched backend retires stored batches to CPU state identical to the
reference interpreter over the iterator stream; and the content-addressed
trace store turns all of it into a deterministic, corruption-safe
campaign cache.
"""

from __future__ import annotations

import pytest

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.difftest.harness import diff_backends, workload_batches, workload_events
from repro.errors import TraceError
from repro.experiments.runner import run_campaign, run_pair, run_workload
from repro.experiments.scale import Scale
from repro.isa.kinds import EventKind
from repro.trace.batch import TraceBatch
from repro.trace.engine import LinkMode
from repro.trace.store import (
    TraceStore,
    apply_stats,
    generate_bundle,
    trace_key,
)
from repro.uarch import CPU
from repro.uarch.backend import BatchedBackend
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload

PROFILES = ("apache", "firefox", "memcached", "mysql")
REQUESTS = 4
SEED = 2025


def _workload(name: str, mode: LinkMode = LinkMode.DYNAMIC) -> Workload:
    return Workload(ALL_WORKLOADS[name].config(seed=SEED), mode)


# ------------------------------------------------- generation equivalence


class TestArrayGenerationMatchesLegacy:
    """The batch-emitting twins are oracle-checked against the iterators."""

    @pytest.mark.parametrize("name", PROFILES)
    def test_startup_and_requests_byte_identical(self, name):
        legacy = _workload(name)
        events = list(legacy.startup_trace())
        events.extend(legacy.trace(REQUESTS))

        arrayed = _workload(name)
        batches = [arrayed.startup_batch(), arrayed.trace_batch(REQUESTS)]

        total = sum(len(b.data) for b in batches)
        assert total == len(events)
        # Byte-identical through the codec — same rows, same tag
        # interning order — segment by segment.
        assert TraceBatch.from_events(events[: len(batches[0].data)]).to_bytes() == (
            batches[0].to_bytes()
        )
        assert TraceBatch.from_events(events[len(batches[0].data) :]).to_bytes() == (
            batches[1].to_bytes()
        )

    @pytest.mark.parametrize("name", PROFILES)
    def test_usage_stats_identical(self, name):
        legacy = _workload(name)
        list(legacy.startup_trace())
        legacy.reset_usage_stats()
        list(legacy.trace(REQUESTS))

        arrayed = _workload(name)
        arrayed.startup_batch()
        arrayed.reset_usage_stats()
        arrayed.trace_batch(REQUESTS)

        assert arrayed.touched_pairs == legacy.touched_pairs
        assert arrayed.pair_counts == legacy.pair_counts
        assert arrayed.engine.calls_emitted == legacy.engine.calls_emitted
        assert arrayed.engine.resolutions_emitted == legacy.engine.resolutions_emitted

    def test_static_mode_and_warmup_kwargs_match(self):
        legacy = _workload("memcached", LinkMode.STATIC)
        events = list(legacy.trace(REQUESTS, include_marks=False, start_id=7))
        arrayed = _workload("memcached", LinkMode.STATIC)
        batch = arrayed.trace_batch(REQUESTS, include_marks=False, start_id=7)
        assert TraceBatch.from_events(events).to_bytes() == batch.to_bytes()

    def test_template_cache_invalidated_by_binding_epoch(self):
        """A GOT rewrite mid-trace must not leave stale call templates."""
        legacy = _workload("memcached")
        arrayed = _workload("memcached")
        for wl in (legacy, arrayed):
            # Warm the engine (and, on the array side, its template cache).
            if wl is legacy:
                list(wl.startup_trace())
            else:
                wl.startup_batch()
            epoch = wl.program.binding_epoch
            wl.program.reselect_ifuncs(hwcap_level=1)
            assert wl.program.binding_epoch == epoch + 1
        events = list(legacy.trace(REQUESTS))
        batch = arrayed.trace_batch(REQUESTS)
        assert TraceBatch.from_events(events).to_bytes() == batch.to_bytes()


# ----------------------------------------------- codec round-trip (all kinds)


class TestCodecRoundTrip:
    @pytest.mark.parametrize("name", PROFILES)
    def test_round_trip_over_profile(self, name):
        """Satellite contract: from_events/to_events over every profile,
        context-switch and dlclose event kinds included."""
        wl = _workload(name)
        events = list(wl.startup_trace())
        events.extend(wl.trace(REQUESTS))
        # dlclose emits the GOT-reset stores + markers the codec must
        # also carry; unload the last-loaded library once tracing is done.
        events.extend(wl.engine.dlclose_events(wl.config.libraries[-1].name))

        batch = TraceBatch.from_events(events)
        back = batch.to_events()
        assert len(back) == len(events)
        for orig, rt in zip(events, back):
            for attr in ("kind", "pc", "n_instr", "nbytes", "target", "mem_addr", "tag"):
                assert getattr(orig, attr) == getattr(rt, attr), attr
            assert bool(orig.taken) == bool(rt.taken)
        # And byte-stability through a second serialisation.
        assert TraceBatch.from_events(back).to_bytes() == batch.to_bytes()

    def test_context_switch_kind_emitted_and_round_trips(self):
        import dataclasses

        cfg = dataclasses.replace(
            ALL_WORKLOADS["memcached"].config(seed=SEED), context_switch_interval=500
        )
        batch = Workload(cfg, LinkMode.DYNAMIC).trace_batch(5)
        kinds = {int(k) for k in batch.data["kind"]}
        assert int(EventKind.CONTEXT_SWITCH) in kinds
        assert int(EventKind.MARK) in kinds
        assert TraceBatch.from_events(batch.to_events()).to_bytes() == batch.to_bytes()


# ------------------------------------------------------------ batch slicing


class TestBatchSlices:
    def test_slices_are_zero_copy_views_covering_all_rows(self):
        batch = _workload("memcached").trace_batch(REQUESTS)
        pieces = list(batch.slices(101))
        assert sum(len(p.data) for p in pieces) == len(batch.data)
        assert all(p.tags is batch.tags for p in pieces)
        assert pieces[0].data.base is not None  # a view, not a copy

    def test_slices_rejects_nonpositive(self):
        batch = _workload("memcached").trace_batch(1)
        with pytest.raises(TraceError):
            list(batch.slices(0))


# ------------------------------------------------------- batched retirement


class TestRunBatches:
    def test_run_batches_matches_reference_full_snapshot(self):
        events = workload_events("memcached", requests=REQUESTS, seed=SEED)
        batches = workload_batches("memcached", requests=REQUESTS, seed=SEED)

        def make_cpu() -> CPU:
            return CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=64)))

        ref = make_cpu()
        ref.run(events)
        fast = make_cpu()
        BatchedBackend(fast, 101).run_batches(batches)
        assert ref.snapshot() == fast.snapshot()

    def test_difftest_array_generation_is_clean(self):
        report = diff_backends(
            workload_events("apache", requests=REQUESTS, seed=SEED),
            CPU,
            fast_batches=workload_batches("apache", requests=REQUESTS, seed=SEED),
        )
        assert report.ok, report.render()

    def test_difftest_reports_stream_length_mismatch(self):
        events = workload_events("apache", requests=REQUESTS, seed=SEED)
        batches = workload_batches("apache", requests=REQUESTS, seed=SEED)
        truncated = [batches[0], TraceBatch(batches[1].data[:-3], batches[1].tags)]
        report = diff_backends(events, CPU, fast_batches=truncated)
        assert not report.ok
        assert any(p == "stream.len" for p, _r, _f in report.divergence.diffs)


# ------------------------------------------------------------- trace store


class TestTraceStore:
    def _bundle(self, warmup=2, measured=3):
        wl = _workload("memcached")
        return generate_bundle(wl, warmup, measured), wl

    def test_save_load_round_trip_with_stats(self, tmp_path):
        bundle, wl = self._bundle()
        store = TraceStore(tmp_path)
        cfg = wl.config
        key = trace_key(cfg, LinkMode.DYNAMIC, 2, 3)
        assert not store.has(key)
        store.save(key, bundle)
        assert store.has(key)
        loaded = store.load(key)
        assert loaded is not None
        for got, want in zip(loaded.segments(), bundle.segments()):
            assert got.to_bytes() == want.to_bytes()
        fresh = _workload("memcached")
        apply_stats(loaded.stats, fresh)
        assert fresh.touched_pairs == wl.touched_pairs
        assert fresh.pair_counts == wl.pair_counts
        assert fresh.engine.calls_emitted == wl.engine.calls_emitted

    def test_corrupt_segment_reads_as_miss(self, tmp_path):
        bundle, wl = self._bundle()
        store = TraceStore(tmp_path)
        key = trace_key(wl.config, LinkMode.DYNAMIC, 2, 3)
        entry = store.save(key, bundle)
        raw = bytearray((entry / "measured.trace").read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        (entry / "measured.trace").write_bytes(bytes(raw))
        assert store.has(key)  # marker present...
        assert store.load(key) is None  # ...but the payload is not trusted

    def test_missing_marker_reads_as_miss(self, tmp_path):
        bundle, wl = self._bundle()
        store = TraceStore(tmp_path)
        key = trace_key(wl.config, LinkMode.DYNAMIC, 2, 3)
        entry = store.save(key, bundle)
        (entry / "meta.json").unlink()
        assert store.load(key) is None

    def test_key_covers_recipe_and_windows(self):
        cfg = ALL_WORKLOADS["memcached"].config(seed=SEED)
        base = trace_key(cfg, LinkMode.DYNAMIC, 2, 3)
        assert trace_key(cfg, LinkMode.DYNAMIC, 2, 3) == base
        assert trace_key(cfg, LinkMode.STATIC, 2, 3) != base
        assert trace_key(cfg, LinkMode.DYNAMIC, 3, 3) != base
        assert trace_key(cfg, LinkMode.DYNAMIC, 2, 4) != base
        other = ALL_WORKLOADS["memcached"].config(seed=SEED + 1)
        assert trace_key(other, LinkMode.DYNAMIC, 2, 3) != base


# ----------------------------------------------------- runner integration


class TestRunnerTraceCache:
    SCALE = Scale("t", {"memcached": (3, 2)})

    def _pair(self, **kw):
        base, enhanced = run_pair("memcached", self.SCALE, abtb_entries=16, **kw)
        return (
            base.counters.instructions,
            base.counters.cycles,
            enhanced.counters.cycles,
            len(base.requests),
            base.workload.distinct_trampolines_touched,
            sorted(base.workload.pair_counts.items()),
            base.workload.engine.calls_emitted,
        )

    def test_cold_and_warm_match_reference(self, tmp_path):
        reference = self._pair(backend="reference")
        store = TraceStore(tmp_path)
        cold = self._pair(backend="batched", trace_cache=store)
        warm = self._pair(backend="batched", trace_cache=store)
        assert reference == cold == warm

    def test_trace_cache_ignored_for_reference_backend(self, tmp_path):
        store = TraceStore(tmp_path)
        result = self._pair(backend="reference", trace_cache=store)
        assert result == self._pair(backend="reference")
        assert not list(tmp_path.rglob("meta.json"))  # never engaged

    def test_backend_used_reported(self, tmp_path):
        cfg = ALL_WORKLOADS["memcached"].config(seed=SEED)
        result = run_workload(
            cfg, warmup_requests=1, measured_requests=2,
            backend="batched", trace_cache=TraceStore(tmp_path),
        )
        assert result.backend_used == "batched"
        assert result.requests


# ------------------------------------------------------------ determinism


class TestDeterminism:
    def test_same_seed_byte_identical_batches(self):
        a = _workload("apache").trace_batch(REQUESTS)
        b = _workload("apache").trace_batch(REQUESTS)
        assert a.to_bytes() == b.to_bytes()

    def test_serial_and_sharded_campaigns_store_identical_bytes(self, tmp_path):
        """Satellite contract: the same seed produces byte-identical
        serialised traces whether the campaign runs --jobs 1 or --jobs 4."""
        scale = Scale("t", {"memcached": (2, 2), "apache": (2, 2)})
        summaries = {}
        for jobs in (1, 4):
            root = tmp_path / f"jobs{jobs}"
            result = run_campaign(
                ("memcached", "apache"), scale, abtb_sizes=(16,),
                jobs=jobs, backend="batched",
                machine_cache_dir=root / "machines",
                trace_cache_dir=root / "traces",
            )
            assert result.ok
            summaries[jobs] = result.completed
        assert summaries[1] == summaries[4]
        files1 = sorted(
            p.relative_to(tmp_path / "jobs1")
            for p in (tmp_path / "jobs1").rglob("*.trace")
        )
        files4 = sorted(
            p.relative_to(tmp_path / "jobs4")
            for p in (tmp_path / "jobs4").rglob("*.trace")
        )
        assert files1 and files1 == files4
        for rel in files1:
            assert (tmp_path / "jobs1" / rel).read_bytes() == (
                tmp_path / "jobs4" / rel
            ).read_bytes(), rel
