"""Tests for the hardened experiment runner.

Mark pairing that surfaces unmatched begin/end marks, latency guards
against corrupt samples, config validation, and the campaign machinery:
per-run timeout, bounded retry with exponential backoff, JSON
checkpoint/resume and graceful degradation.
"""

from __future__ import annotations

import json
import math
import time
from types import SimpleNamespace

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.runner import (
    RequestSample,
    RetryPolicy,
    RunResult,
    _pair_marks,
    pair_key,
    run_campaign,
    run_pair,
    run_workload,
    summarize_pair,
)
from repro.experiments.scale import SMOKE, Scale
from repro.isa.events import block, mark
from repro.uarch import CPU
from repro.workloads import ALL_WORKLOADS


def _cpu_with_marks(tags):
    cpu = CPU()
    events = []
    for tag in tags:
        events.append(mark(tag))
        events.append(block(0x1000, 10))
    cpu.run(events)
    return cpu


class TestPairMarks:
    def test_well_formed_marks_pair_up(self):
        cpu = _cpu_with_marks([("begin", "get", 1), ("end", "get", 1)])
        samples, unmatched, dropped = _pair_marks(cpu, 0)
        assert len(samples) == 1 and unmatched == 0 and dropped == 0
        assert samples[0].class_name == "get" and samples[0].instructions > 0

    def test_end_without_begin_is_counted(self):
        cpu = _cpu_with_marks([("end", "get", 9)])
        samples, unmatched, _ = _pair_marks(cpu, 0)
        assert samples == [] and unmatched == 1

    def test_begin_without_end_is_counted(self):
        cpu = _cpu_with_marks([("begin", "get", 1), ("begin", "set", 2), ("end", "get", 1)])
        samples, unmatched, _ = _pair_marks(cpu, 0)
        assert len(samples) == 1 and unmatched == 1

    def test_duplicated_begin_is_counted(self):
        cpu = _cpu_with_marks([("begin", "get", 1), ("begin", "get", 1), ("end", "get", 1)])
        _, unmatched, _ = _pair_marks(cpu, 0)
        assert unmatched == 1

    @pytest.mark.parametrize(
        "tags",
        [
            [("end", "get", 9)],
            [("begin", "get", 1)],
            [("begin", "get", 1), ("begin", "get", 1), ("end", "get", 1)],
        ],
        ids=["orphan-end", "orphan-begin", "dup-begin"],
    )
    def test_strict_mode_raises(self, tags):
        cpu = _cpu_with_marks(tags)
        with pytest.raises(ExperimentError):
            _pair_marks(cpu, 0, strict=True)

    def test_run_workload_reports_zero_unmatched_on_healthy_trace(self):
        result = run_workload(
            ALL_WORKLOADS["memcached"].config(seed=3),
            warmup_requests=2,
            measured_requests=5,
            strict_marks=True,
        )
        assert result.unmatched_marks == 0
        assert result.dropped_samples == 0
        assert len(result.requests) == 5


class TestLatencyGuards:
    def _result_with(self, samples):
        return RunResult("x", None, samples, None, None)

    def test_non_finite_and_negative_cycles_excluded(self):
        result = self._result_with(
            [
                RequestSample("get", 1, 100, 2000.0),
                RequestSample("get", 2, 100, float("nan")),
                RequestSample("get", 3, 100, -5.0),
                RequestSample("get", 4, 100, float("inf")),
            ]
        )
        lats = result.latencies_us()
        assert len(lats) == 1
        assert all(math.isfinite(v) and v >= 0 for v in lats)


class TestRunPairValidation:
    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            run_pair("postgres", SMOKE)

    def test_negative_warmup_rejected(self):
        bad = Scale("bad", {"memcached": (-1, 10)})
        with pytest.raises(ConfigError):
            run_pair("memcached", bad)

    def test_empty_window_rejected(self):
        bad = Scale("bad", {"memcached": (5, 0)})
        with pytest.raises(ConfigError):
            run_pair("memcached", bad)


def _fake_pair(cycles_base=200.0, cycles_enh=100.0):
    mk = lambda cyc: SimpleNamespace(  # noqa: E731
        counters=SimpleNamespace(instructions=1000, cycles=cyc),
        skip_rate=0.9,
        unmatched_marks=0,
    )
    return mk(cycles_base), mk(cycles_enh)


class TestCampaign:
    def test_retry_with_backoff_then_success(self):
        calls = {"n": 0}
        sleeps = []

        def flaky(workload, scale, abtb):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ExperimentError("transient")
            return _fake_pair()

        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(64,),
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.25),
            run_fn=flaky,
            sleep_fn=sleeps.append,
        )
        key = pair_key("memcached", 64, "smoke")
        assert result.ok
        assert result.attempts[key] == 3
        assert sleeps == [0.25, 0.5]  # exponential backoff
        assert result.completed[key]["speedup"] == pytest.approx(2.0)

    def test_retries_exhausted_records_failure(self):
        sleeps = []

        def always_fails(workload, scale, abtb):
            raise ExperimentError("still broken")

        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(64,),
            policy=RetryPolicy(max_retries=1),
            run_fn=always_fails,
            sleep_fn=sleeps.append,
        )
        assert not result.ok
        assert "still broken" in result.failed[pair_key("memcached", 64, "smoke")]
        assert len(sleeps) == 1

    def test_non_transient_error_fails_fast(self):
        sleeps = []

        def crashes(workload, scale, abtb):
            raise ValueError("config is nonsense")

        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(64,),
            policy=RetryPolicy(max_retries=5),
            run_fn=crashes,
            sleep_fn=sleeps.append,
        )
        key = pair_key("memcached", 64, "smoke")
        assert result.attempts[key] == 1  # no retry for non-transient errors
        assert sleeps == []
        assert "ValueError" in result.failed[key]

    def test_timeout_is_transient(self):
        def hangs(workload, scale, abtb):
            time.sleep(5.0)

        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(64,),
            policy=RetryPolicy(timeout_s=0.05, max_retries=0),
            run_fn=hangs,
            sleep_fn=lambda s: None,
        )
        assert "timeout" in result.failed[pair_key("memcached", 64, "smoke")]

    def test_graceful_degradation_partial_report(self):
        def picky(workload, scale, abtb):
            if workload == "apache":
                raise ExperimentError("bad day")
            return _fake_pair()

        result = run_campaign(
            ["memcached", "apache"],
            SMOKE,
            abtb_sizes=(64,),
            policy=RetryPolicy(max_retries=0),
            run_fn=picky,
            sleep_fn=lambda s: None,
        )
        assert not result.ok
        assert pair_key("memcached", 64, "smoke") in result.completed
        assert pair_key("apache", 64, "smoke") in result.failed
        rendered = result.render()
        assert "1 failed" in rendered and "FAILED: bad day" in rendered

    def test_checkpoint_resume_skips_completed(self, tmp_path):
        path = tmp_path / "ckpt.json"
        calls = []

        def counting(workload, scale, abtb):
            calls.append((workload, abtb))
            return _fake_pair()

        first = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(32, 64),
            checkpoint_path=path,
            run_fn=counting,
            sleep_fn=lambda s: None,
        )
        assert first.ok and len(calls) == 2
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == "repro.campaign-checkpoint"
        assert envelope["schema_version"] == 2
        assert set(envelope["payload"]["completed"]) == {
            pair_key("memcached", 32, "smoke"),
            pair_key("memcached", 64, "smoke"),
        }

        second = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(32, 64),
            checkpoint_path=path,
            run_fn=counting,
            sleep_fn=lambda s: None,
        )
        assert second.resumed == 2
        assert len(calls) == 2  # nothing re-ran
        assert second.completed == first.completed

    def test_checkpoint_written_after_each_pair(self, tmp_path):
        # A failure on the second pair must not lose the first pair's work.
        path = tmp_path / "ckpt.json"

        def second_fails(workload, scale, abtb):
            if abtb == 64:
                raise ExperimentError("died mid-campaign")
            return _fake_pair()

        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(32, 64),
            checkpoint_path=path,
            policy=RetryPolicy(max_retries=0),
            run_fn=second_fails,
            sleep_fn=lambda s: None,
        )
        assert not result.ok
        saved = json.loads(path.read_text())["payload"]["completed"]
        assert pair_key("memcached", 32, "smoke") in saved
        assert pair_key("memcached", 64, "smoke") not in saved

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            run_campaign(["memcached"], SMOKE, checkpoint_path=path, run_fn=_fake_pair)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 99, "completed": {}}))
        with pytest.raises(ExperimentError):
            run_campaign(["memcached"], SMOKE, checkpoint_path=path, run_fn=_fake_pair)

    def test_summarize_pair_is_json_serialisable(self):
        base, enh = _fake_pair(300.0, 150.0)
        summary = summarize_pair(base, enh)
        json.dumps(summary)
        assert summary["speedup"] == pytest.approx(2.0)

    def test_real_pair_end_to_end(self, tmp_path):
        # Default run_fn drives the actual simulator once.
        result = run_campaign(
            ["memcached"],
            SMOKE,
            abtb_sizes=(64,),
            checkpoint_path=tmp_path / "ckpt.json",
        )
        assert result.ok
        summary = result.completed[pair_key("memcached", 64, "smoke")]
        assert summary["instructions"] > 0
        assert 0.0 <= summary["skip_rate"] <= 1.0
        assert summary["unmatched_marks"] == 0
