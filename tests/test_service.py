"""Tests for the campaign service (src/repro/service/).

Covers the lease queue's deadline/backoff/quarantine semantics under a
fake clock, the strict request schemas, the write-ahead journal's
corruption taxonomy (torn tail vs bit flip vs snapshot loss), the
content-addressed result store's idempotence, the manager state machine
(including restart recovery and journal-corruption healing), the REST
API over real HTTP, the worker agent, and the shutdown-hardening
satellites (KeyboardInterrupt flushes checkpoints; missing files are
silent misses, not incidents).

The acceptance property: a service campaign that loses a worker to
SIGKILL *and* has its manager killed and restarted mid-run must produce
a CampaignResult counter-for-counter identical to a serial fault-free
``run_campaign`` of the same spec.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.cli import build_parser, main as cli_main
from repro.errors import SchemaError, ServiceError
from repro.experiments.runner import (
    _load_checkpoint,
    _save_checkpoint,
    run_campaign,
)
from repro.experiments.scale import SMOKE
from repro.resilience import IncidentRecorder, SupervisorPolicy
from repro.resilience.integrity import read_artifact
from repro.service import (
    CampaignManager,
    CampaignSpec,
    CompleteRequest,
    Journal,
    LeaseQueue,
    ResultStore,
    ShardPhase,
    shard_result_key,
)
from repro.service.api import ManagerServer
from repro.service.schemas import FailRequest, LeaseRequest
from repro.service.store import RESULT_SCHEMA, RESULT_SCHEMA_VERSION
from repro.service.worker import ManagerClient, WorkerAgent


class Clock:
    """Deterministic monotonic clock for lease tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


#: Fast-converging lease knobs: TTL 10s on the fake clock, tiny backoff.
FAST = SupervisorPolicy(
    shard_deadline_s=10.0,
    max_shard_failures=3,
    backoff_base_s=1.0,
    backoff_factor=2.0,
    poll_interval_s=0.01,
)


def _outcome(key: str, failed: str | None = None) -> dict:
    """Synthetic worker outcome, deterministic per key."""
    if failed is not None:
        return {"key": key, "attempts": 1, "retries": 0, "failed": failed, "summary": None}
    return {
        "key": key,
        "attempts": 1,
        "retries": 0,
        "failed": None,
        "summary": {"speedup": 1.0 + len(key) / 100.0, "instructions": 1000},
    }


# --------------------------------------------------------------- lease queue


class TestLeaseQueue:
    def _queue(self):
        clock = Clock()
        return LeaseQueue(FAST, clock=clock), clock

    def test_fifo_acquire_and_complete(self):
        q, _ = self._queue()
        q.add("a", {"n": 1})
        q.add("b", {"n": 2})
        lease, payload = q.acquire("w1")
        assert (lease.key, payload) == ("a", {"n": 1})
        assert lease.attempt == 1
        assert q.phase("a") is ShardPhase.LEASED
        assert q.complete("a") == "completed"
        assert q.phase("a") is ShardPhase.COMPLETED
        assert q.acquire("w1")[0].key == "b"
        assert q.counts() == {"pending": 0, "leased": 1, "completed": 1, "quarantined": 0}

    def test_duplicate_add_rejected(self):
        q, _ = self._queue()
        q.add("a", {})
        with pytest.raises(ServiceError):
            q.add("a", {})

    def test_renew_extends_deadline(self):
        q, clock = self._queue()
        q.add("a", {})
        lease, _ = q.acquire("w1")
        clock.advance(8.0)
        renewed = q.renew(lease.lease_id, "w1")
        assert renewed is not None and renewed.expires_at == pytest.approx(18.0)
        clock.advance(8.0)  # t=16 < 18: still alive thanks to the renewal
        assert q.expire() == []
        clock.advance(3.0)  # t=19 > 18: now it expires
        events = q.expire()
        assert [e.key for e in events] == ["a"]
        assert not events[0].quarantined

    def test_unrenewed_lease_expires_and_requeues_with_backoff(self):
        q, clock = self._queue()
        q.add("a", {})
        q.acquire("w1")
        clock.advance(10.1)
        events = q.expire()
        assert len(events) == 1 and events[0].failures == 1
        assert q.phase("a") is ShardPhase.PENDING
        # Still backing off: not leasable yet.
        assert q.acquire("w2") is None
        clock.advance(events[0].backoff_s + 0.01)
        lease, _ = q.acquire("w2")
        assert lease.key == "a" and lease.attempt == 2

    def test_quarantine_after_failure_budget(self):
        q, clock = self._queue()
        q.add("a", {})
        for i in range(FAST.max_shard_failures):
            clock.advance(FAST.backoff(i) + 0.01)
            assert q.acquire("w1") is not None
            clock.advance(FAST.shard_deadline_s + 0.1)
            events = q.expire()
        assert events[-1].quarantined
        assert q.phase("a") is ShardPhase.QUARANTINED
        assert q.acquire("w1") is None

    def test_completion_is_idempotent_and_heals_quarantine(self):
        q, _ = self._queue()
        q.add("a", {})
        q.acquire("w1")
        assert q.complete("a") == "completed"
        assert q.complete("a") == "deduped"
        q.add("b", {})
        q.quarantine("b", "gave up")
        assert q.complete("b") == "healed"
        assert q.phase("b") is ShardPhase.COMPLETED
        assert q.complete("nope") == "unknown"

    def test_completion_accepted_from_pending(self):
        # Manager restart: lease forgotten, shard pending again — the old
        # worker's late delivery must still land.
        q, _ = self._queue()
        q.add("a", {})
        assert q.complete("a") == "completed"

    def test_renew_wrong_worker_or_expired_is_refused(self):
        q, clock = self._queue()
        q.add("a", {})
        lease, _ = q.acquire("w1")
        assert q.renew(lease.lease_id, "w2") is None
        clock.advance(10.1)
        assert q.renew(lease.lease_id, "w1") is None  # expired: no resurrection
        assert q.renew("L999", "w1") is None

    def test_worker_reported_failure_and_discard(self):
        q, clock = self._queue()
        q.add("a", {})
        q.acquire("w1")
        quarantined, backoff = q.fail("a", "boom")
        assert not quarantined and backoff > 0
        assert q.failures("a") == 1 and q.last_error("a") == "boom"
        q.discard("a")
        assert q.phase("a") is None


# ------------------------------------------------------------------ schemas


class TestSchemas:
    def test_spec_roundtrip_and_defaults(self):
        spec = CampaignSpec.from_dict({"workloads": ["apache"]})
        assert spec.abtb_sizes == (256,) and spec.scale == "smoke"
        assert CampaignSpec.from_dict(spec.as_dict()) == spec

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"workloads": []},
            {"workloads": ["nope"]},
            {"workloads": ["apache", "apache"]},
            {"workloads": ["apache"], "abtb_sizes": [0]},
            {"workloads": ["apache"], "abtb_sizes": [True]},
            {"workloads": ["apache"], "abtb_sizes": [64, 64]},
            {"workloads": ["apache"], "scale": "huge"},
            {"workloads": ["apache"], "backend": "gpu"},
            {"workloads": ["apache"], "timeout_s": -1},
            {"workloads": ["apache"], "max_retries": -1},
            {"workloads": ["apache"], "surprise": 1},
            {"workloads": "apache"},
        ],
    )
    def test_spec_rejects_bad_bodies(self, body):
        with pytest.raises(SchemaError):
            CampaignSpec.from_dict(body)

    def test_complete_request_needs_summary_or_failure(self):
        with pytest.raises(SchemaError):
            CompleteRequest.from_dict(
                {"campaign_id": "c", "key": "k", "worker_id": "w", "outcome": {}}
            )
        ok = CompleteRequest.from_dict(
            {
                "campaign_id": "c", "key": "k", "worker_id": "w",
                "outcome": {"summary": {"speedup": 1.0}},
            }
        )
        assert ok.outcome["summary"]["speedup"] == 1.0

    def test_lease_and_fail_requests_validate(self):
        with pytest.raises(SchemaError):
            LeaseRequest.from_dict({"worker_id": ""})
        with pytest.raises(SchemaError):
            FailRequest.from_dict({"campaign_id": "c", "key": "k", "worker_id": "w"})


# ------------------------------------------------------------------ journal


class TestJournal:
    def test_append_load_roundtrip(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.open_for_append(0)
        j.append("submit", {"campaign_id": "c1"})
        j.append("complete", {"key": "a"})
        j.close()
        state = Journal(tmp_path / "j").load()
        assert [r["type"] for r in state.records] == ["submit", "complete"]
        assert state.problems == [] and state.last_seq == 2

    def test_torn_tail_is_dropped_as_expected_crash(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.open_for_append(0)
        j.append("submit", {"campaign_id": "c1"})
        j.close()
        with open(j.wal_path, "a") as fh:
            fh.write('{"seq": 2, "type": "compl')  # crash mid-append
        state = Journal(tmp_path / "j").load()
        assert len(state.records) == 1
        assert any("torn tail" in p for p in state.problems)

    def test_bitflip_is_detected_and_skipped(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.open_for_append(0)
        j.append("submit", {"campaign_id": "c1"})
        j.append("complete", {"key": "a"})
        j.append("complete", {"key": "b"})
        j.close()
        lines = j.wal_path.read_text().splitlines()
        lines[1] = lines[1].replace('"key": "a"', '"key": "z"')  # corrupt record 2
        j.wal_path.write_text("\n".join(lines) + "\n")
        state = Journal(tmp_path / "j").load()
        assert [r["seq"] for r in state.records] == [1, 3]
        assert any("checksum mismatch" in p for p in state.problems)

    def test_snapshot_truncates_and_replay_skips_covered(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.open_for_append(0)
        j.append("submit", {"campaign_id": "c1"})
        j.write_snapshot({"campaigns": {"c1": {}}})
        j.append("complete", {"key": "a"})
        j.close()
        state = Journal(tmp_path / "j").load()
        assert state.snapshot == {"campaigns": {"c1": {}}}
        assert [r["type"] for r in state.records] == ["complete"]
        assert state.last_seq == 2

    def test_corrupt_snapshot_is_reported_not_fatal(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.open_for_append(0)
        j.write_snapshot({"x": 1})
        j.close()
        text = j.snapshot_path.read_text()
        j.snapshot_path.write_text("garbage" + text)
        state = Journal(tmp_path / "j").load()
        assert state.snapshot is None
        assert any("snapshot" in p for p in state.problems)


# -------------------------------------------------------------- result store


class TestResultStore:
    def test_put_get_and_dedupe(self, tmp_path):
        store = ResultStore(tmp_path)
        key = shard_result_key("apache", 64, "smoke")
        _, deduped = store.put(key, {"speedup": 1.5}, {"workload": "apache"})
        assert not deduped
        _, deduped = store.put(key, {"speedup": 1.5}, {"workload": "apache"})
        assert deduped and store.dedups == 1
        assert store.get(key)["summary"] == {"speedup": 1.5}

    def test_conflicting_second_write_keeps_first_and_records(self, tmp_path):
        recorder = IncidentRecorder()
        store = ResultStore(tmp_path, recorder=recorder)
        key = shard_result_key("apache", 64, "smoke")
        store.put(key, {"speedup": 1.5}, {})
        store.put(key, {"speedup": 9.9}, {})
        assert store.get(key)["summary"]["speedup"] == 1.5
        assert recorder.counts().get("result_conflict") == 1

    def test_divergence_marker_is_not_a_conflict(self, tmp_path):
        recorder = IncidentRecorder()
        store = ResultStore(tmp_path, recorder=recorder)
        key = shard_result_key("apache", 64, "smoke")
        store.put(key, {"speedup": 1.5}, {})
        store.put(key, {"speedup": 1.5, "diverged_backend": True}, {})
        assert "result_conflict" not in recorder.counts()

    def test_corrupt_result_is_miss_with_incident(self, tmp_path):
        recorder = IncidentRecorder()
        store = ResultStore(tmp_path, recorder=recorder)
        key = shard_result_key("apache", 64, "smoke")
        path, _ = store.put(key, {"speedup": 1.5}, {})
        path.write_text(path.read_text().replace("1.5", "2.5"))
        assert store.get(key) is None
        assert recorder.counts().get("result_corrupt") == 1

    def test_missing_result_is_silent_miss(self, tmp_path):
        recorder = IncidentRecorder()
        store = ResultStore(tmp_path, recorder=recorder)
        assert store.get("nope") is None
        assert recorder.counts() == {}

    def test_results_share_envelope_schema(self, tmp_path):
        store = ResultStore(tmp_path)
        key = shard_result_key("apache", 64, "smoke")
        path, _ = store.put(key, {"speedup": 1.0}, {})
        payload = read_artifact(path, RESULT_SCHEMA, RESULT_SCHEMA_VERSION)
        assert payload["key"] == key


# ------------------------------------------------------------------ manager


def _drain(manager: CampaignManager, worker_id: str = "w") -> None:
    """Complete every leasable shard with synthetic outcomes."""
    manager.register_worker(worker_id)
    while True:
        grant = manager.lease(worker_id)
        if grant is None:
            break
        manager.complete(
            CompleteRequest(
                campaign_id=grant["campaign_id"],
                key=grant["key"],
                worker_id=worker_id,
                outcome=_outcome(grant["key"]),
            )
        )


class TestManager:
    def _manager(self, tmp_path, **kw):
        clock = Clock()
        kw.setdefault("policy", FAST)
        kw.setdefault("clock", clock)
        return CampaignManager(tmp_path / "svc", **kw), clock

    def test_lifecycle(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16, 64)))
        assert manager.status(cid)["state"] == "running"
        assert manager.result(cid) is None
        _drain(manager)
        status = manager.status(cid)
        assert status["state"] == "complete"
        assert status["shards"] == {
            "total": 2, "pending": 0, "leased": 0, "completed": 2, "quarantined": 0,
        }
        result = manager.result(cid)
        assert set(result.completed) == {
            "apache::abtb=16::scale=smoke", "apache::abtb=64::scale=smoke",
        }
        assert result.ok and result.attempts == {k: 1 for k in result.completed}

    def test_double_completion_is_idempotent(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        grant = manager.lease("w1")
        request = CompleteRequest(
            campaign_id=cid, key=grant["key"], worker_id="w1",
            outcome=_outcome(grant["key"]),
        )
        assert manager.complete(request)["status"] == "completed"
        assert manager.complete(request)["status"] == "deduped"
        # Exactly one stored result file for the config hash.
        assert len(manager.store.keys()) == 1
        assert manager.result(cid).ok

    def test_expiry_requeues_then_quarantines_degraded(self, tmp_path):
        manager, clock = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        for i in range(FAST.max_shard_failures):
            clock.advance(FAST.backoff(i) + 0.01)
            assert manager.lease("w1") is not None
            clock.advance(FAST.shard_deadline_s + 0.1)
            manager.tick()
        counts = manager.recorder.counts()
        assert counts["lease_expired"] == 3
        assert counts["shard_quarantined"] == 1
        assert counts["shard_requeued"] == 2
        status = manager.status(cid)
        assert status["state"] == "degraded"
        result = manager.result(cid)
        assert result.degraded and set(result.quarantined) == {
            "apache::abtb=16::scale=smoke"
        }

    def test_late_completion_heals_quarantine(self, tmp_path):
        manager, clock = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        grant = None
        for i in range(FAST.max_shard_failures):
            clock.advance(FAST.backoff(i) + 0.01)
            grant = manager.lease("w1") or grant
            clock.advance(FAST.shard_deadline_s + 0.1)
            manager.tick()
        assert manager.status(cid)["state"] == "degraded"
        response = manager.complete(
            CompleteRequest(
                campaign_id=cid, key=grant["key"], worker_id="w1",
                outcome=_outcome(grant["key"]),
            )
        )
        assert response["status"] in ("completed", "healed")
        assert manager.status(cid)["state"] == "complete"
        assert manager.result(cid).ok

    def test_worker_reported_failures_quarantine(self, tmp_path):
        manager, clock = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        for i in range(FAST.max_shard_failures):
            clock.advance(FAST.backoff(i) + 0.01)
            grant = manager.lease("w1")
            response = manager.complete(
                CompleteRequest(
                    campaign_id=cid, key=grant["key"], worker_id="w1",
                    outcome=_outcome(grant["key"], failed="model exploded"),
                )
            )
        assert response["status"] == "quarantined"
        assert manager.result(cid).quarantined

    def test_cross_campaign_dedupe(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        spec = CampaignSpec(workloads=("apache",), abtb_sizes=(16, 64))
        cid1 = manager.submit(spec)
        _drain(manager)
        cid2 = manager.submit(spec)
        # Second campaign completes instantly from the store: no leases.
        assert manager.status(cid2)["state"] == "complete"
        assert manager.lease("w9") is None
        assert manager.result(cid2).completed == manager.result(cid1).completed

    def test_cancel(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        assert manager.cancel(cid)
        assert not manager.cancel(cid)
        assert manager.status(cid)["state"] == "cancelled"
        assert manager.lease("w1") is None

    def test_restart_recovers_identical_result(self, tmp_path):
        spec = CampaignSpec(workloads=("apache", "mysql"), abtb_sizes=(16, 64))

        # Control: one manager, no interruption.
        control, _ = self._manager(tmp_path / "control")
        control_cid = control.submit(spec)
        _drain(control)
        expected = control.result(control_cid)

        # Crash drill: half the work, then the manager is abandoned
        # without shutdown (= SIGKILL; the WAL alone must carry it).
        crashed, _ = self._manager(tmp_path / "crash", snapshot_every=3)
        cid = crashed.submit(spec)
        crashed.register_worker("w1")
        for _ in range(2):
            grant = crashed.lease("w1")
            crashed.complete(
                CompleteRequest(
                    campaign_id=cid, key=grant["key"], worker_id="w1",
                    outcome=_outcome(grant["key"]),
                )
            )
        held = crashed.lease("w1")  # in-flight lease dies with the manager
        assert held is not None

        recovered = CampaignManager(
            tmp_path / "crash" / "svc", policy=FAST, clock=Clock()
        )
        assert recovered.recorder.counts().get("manager_recovered") == 1
        assert recovered.status(cid)["state"] == "running"
        # The in-flight lease was soft state: the shard is pending again.
        assert recovered.status(cid)["shards"]["pending"] == 2
        _drain(recovered, "w2")
        result = recovered.result(cid)
        assert result.completed == expected.completed
        assert result.attempts == expected.attempts
        assert result.failed == expected.failed == {}
        assert result.quarantined == expected.quarantined == {}

    def test_restart_heals_bitflipped_wal_from_store(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        cid = manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16, 64)))
        _drain(manager)
        expected = manager.result(cid)
        wal = manager.journal.wal_path
        # Flip a byte inside a journaled completion record.
        lines = wal.read_text().splitlines()
        target = next(
            i for i, text in enumerate(lines) if '"type": "complete"' in text
        )
        lines[target] = lines[target].replace('"attempts": 1', '"attempts": 7')
        wal.write_text("\n".join(lines) + "\n")

        recovered = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
        counts = recovered.recorder.counts()
        assert counts.get("journal_corrupt", 0) >= 1
        # The dropped completion was reconciled back from the result store.
        assert recovered.status(cid)["state"] == "complete"
        assert recovered.result(cid).completed == expected.completed

    def test_graceful_shutdown_snapshots_and_refuses_further_work(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(16,)))
        manager.shutdown()
        assert manager.recorder.counts().get("shutdown") == 1
        with pytest.raises(ServiceError):
            manager.submit(CampaignSpec(workloads=("apache",), abtb_sizes=(64,)))
        # Restart from the snapshot alone (WAL was truncated into it).
        recovered = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
        assert recovered.status("c0001")["state"] == "running"


# ---------------------------------------------------------------- rest api


@pytest.fixture()
def server(tmp_path):
    manager = CampaignManager(tmp_path / "svc", policy=FAST, clock=Clock())
    srv = ManagerServer(manager, port=0)
    srv.start()
    yield srv
    srv.stop(graceful=True)


class TestApi:
    def test_http_lifecycle(self, server):
        client = ManagerClient(server.url, retries=2)
        status, body = client.post(
            "/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]}
        )
        assert status == 201
        cid = body["campaign_id"]

        status, registration = client.post("/workers/register", {"name": "t"})
        worker_id = registration["worker_id"]
        assert status == 200 and registration["lease_ttl_s"] == FAST.shard_deadline_s

        status, body = client.post("/leases", {"worker_id": worker_id})
        grant = body["lease"]
        assert status == 200 and grant["campaign_id"] == cid

        status, body = client.post(
            f"/leases/{grant['lease_id']}/renew", {"worker_id": worker_id}
        )
        assert status == 200 and body["renewed"]

        status, body = client.get(f"/campaigns/{cid}/result")
        assert status == 409  # still running

        status, body = client.post(
            "/shards/complete",
            {
                "campaign_id": cid, "key": grant["key"], "worker_id": worker_id,
                "outcome": _outcome(grant["key"]),
            },
        )
        assert (status, body["status"]) == (200, "completed")

        status, body = client.get(f"/campaigns/{cid}/result")
        assert status == 200 and grant["key"] in body["completed"]
        status, body = client.get("/campaigns")
        assert status == 200 and len(body["campaigns"]) == 1

    def test_renew_of_unknown_lease_is_gone(self, server):
        client = ManagerClient(server.url, retries=2)
        status, body = client.post("/leases/L999/renew", {"worker_id": "w"})
        assert status == 410 and body == {"renewed": False}

    def test_validation_and_routing_errors(self, server):
        client = ManagerClient(server.url, retries=2)
        assert client.post("/campaigns", {"workloads": ["nope"]})[0] == 400
        assert client.post("/campaigns", {"workloads": ["apache"], "x": 1})[0] == 400
        assert client.get("/campaigns/c9999")[0] == 404
        assert client.post("/no/such/route", {})[0] == 404
        assert client.post("/campaigns/c9999/cancel", {})[1] == {"cancelled": False}

    def test_metrics_incidents_healthz(self, server):
        client = ManagerClient(server.url, retries=2)
        client.post("/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]})
        status, text = client.get_text("/metrics")
        assert status == 200 and "service_campaigns_submitted 1.0" in text
        status, body = client.get("/healthz")
        assert status == 200 and body["ok"] and body["campaigns"] == 1
        server.manager.recorder.record("shutdown", "drill", severity="info")
        status, text = client.get_text("/incidents")
        assert status == 200
        records = [json.loads(line) for line in text.splitlines()]
        assert any(r["kind"] == "shutdown" for r in records)


# ------------------------------------------------------- shutdown hardening


class TestShutdownHardening:
    def test_run_campaign_interrupt_flushes_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "campaign.json"
        recorder = IncidentRecorder()
        calls = []

        def run_fn(workload, scale, abtb):
            calls.append(abtb)
            if len(calls) == 2:
                raise KeyboardInterrupt
            from repro.experiments.runner import run_pair

            return run_pair(workload, scale, abtb)

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                ["apache"], SMOKE, abtb_sizes=(16, 64, 256),
                checkpoint_path=checkpoint, run_fn=run_fn, recorder=recorder,
            )
        assert recorder.counts().get("shutdown") == 1
        resumed = _load_checkpoint(checkpoint, recorder)
        assert set(resumed) == {"apache::abtb=16::scale=smoke"}

    def test_load_checkpoint_missing_is_silent(self, tmp_path):
        recorder = IncidentRecorder()
        assert _load_checkpoint(tmp_path / "absent.json", recorder) == {}
        assert _load_checkpoint(tmp_path / "absent.json", None) == {}
        assert recorder.counts() == {}

    def test_save_then_load_still_roundtrips(self, tmp_path):
        path = tmp_path / "ck.json"
        _save_checkpoint(path, {"k": {"speedup": 1.0}})
        assert _load_checkpoint(path, None) == {"k": {"speedup": 1.0}}

    def test_cli_campaign_interrupt_exits_130(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "run_campaign", boom)
        code = cli_main(
            ["campaign", "--workloads", "apache", "--abtb", "16",
             "--incidents-out", str(tmp_path / "inc.jsonl")]
        )
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_cli_parser_has_service_commands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--data-dir", "d", "--port", "0", "--lease-ttl", "5"]
        )
        assert args.func.__name__ == "_cmd_serve"
        args = parser.parse_args(["worker", "--manager", "http://x", "--max-idle", "3"])
        assert args.func.__name__ == "_cmd_worker"
        args = parser.parse_args(
            ["submit", "--workloads", "apache", "--abtb", "16", "--no-wait"]
        )
        assert args.func.__name__ == "_cmd_submit" and not args.wait

    def test_atomic_writers_leave_no_tmp_litter(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import Tracer

        recorder = IncidentRecorder()
        recorder.record("shutdown", "x", severity="info")
        recorder.write_jsonl(tmp_path / "inc.jsonl")
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.write(str(tmp_path / "m.prom"))
        registry.write(str(tmp_path / "m.jsonl"))
        tracer = Tracer()
        tracer.instant("x")
        tracer.write(str(tmp_path / "t.json"))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "inc.jsonl", "m.jsonl", "m.prom", "t.json",
        ]
        assert json.loads((tmp_path / "t.json").read_text())["traceEvents"]


# ------------------------------------------------------------- worker + e2e


def _worker_proc(url: str, cache_dir: str, kill_after: int) -> None:
    """Subprocess entry point (module-level for spawn picklability)."""
    from repro.service.worker import ManagerClient, WorkerAgent, WorkerChaos

    chaos = WorkerChaos(kill_after_leases=kill_after) if kill_after else None
    agent = WorkerAgent(
        ManagerClient(url, retries=120, retry_delay_s=0.25),
        name="kill" if kill_after else "steady",
        poll_interval_s=0.1,
        max_idle_s=5.0,
        machine_cache_dir=cache_dir,
        chaos=chaos,
    )
    agent.run()


class TestWorkerAndRecoveryE2E:
    def test_worker_agent_executes_real_shard(self, tmp_path):
        cache = str(tmp_path / "cache")
        serial = run_campaign(["apache"], SMOKE, abtb_sizes=(16,), machine_cache_dir=cache)
        manager = CampaignManager(tmp_path / "svc", policy=SupervisorPolicy())
        server = ManagerServer(manager, port=0)
        server.start()
        try:
            client = ManagerClient(server.url, retries=3)
            _, body = client.post(
                "/campaigns", {"workloads": ["apache"], "abtb_sizes": [16]}
            )
            agent = WorkerAgent(
                ManagerClient(server.url, retries=3),
                max_idle_s=1.0, poll_interval_s=0.05, machine_cache_dir=cache,
            )
            stats = agent.run()
            assert stats["shards_done"] == 1
            result = manager.result(body["campaign_id"])
            assert result.completed == serial.completed
        finally:
            server.stop(graceful=True)

    def test_acceptance_worker_sigkill_and_manager_restart(self, tmp_path):
        """The ISSUE's acceptance criterion, end to end: one worker is
        SIGKILL'd mid-campaign AND the manager is killed (non-graceful
        stop, journal not closed) and restarted on the same port; the
        final CampaignResult must match a serial fault-free run
        counter-for-counter."""
        cache = str(tmp_path / "cache")
        spec = {"workloads": ["apache"], "abtb_sizes": [16, 64, 256]}
        serial = run_campaign(
            ["apache"], SMOKE, abtb_sizes=(16, 64, 256), machine_cache_dir=cache
        )

        policy = SupervisorPolicy(shard_deadline_s=3.0, max_shard_failures=5)
        data_dir = tmp_path / "svc"
        manager1 = CampaignManager(data_dir, policy=policy)
        server1 = ManagerServer(manager1, port=0)
        server1.start()
        port = server1.port

        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(target=_worker_proc, args=(server1.url, cache, 1)),
            ctx.Process(target=_worker_proc, args=(server1.url, cache, 0)),
        ]
        for w in workers:
            w.start()
        try:
            client = ManagerClient(server1.url, retries=3)
            _, body = client.post("/campaigns", spec)
            cid = body["campaign_id"]

            # Wait for the SIGKILL'd worker's lease to expire (proves the
            # expiry path ran), then kill the manager non-gracefully.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if manager1.recorder.counts().get("lease_expired"):
                    break
                time.sleep(0.1)
            assert manager1.recorder.counts().get("lease_expired"), (
                "worker SIGKILL never surfaced as a lease expiry"
            )
            server1.stop(graceful=False)  # journal left open = crash

            manager2 = CampaignManager(data_dir, policy=policy)
            assert manager2.recorder.counts().get("manager_recovered") == 1
            server2 = ManagerServer(manager2, port=port)
            server2.start()
            try:
                deadline = time.monotonic() + 90.0
                while time.monotonic() < deadline:
                    status = manager2.status(cid)
                    if status["state"] in ("complete", "degraded"):
                        break
                    time.sleep(0.2)
                assert manager2.status(cid)["state"] == "complete"
                result = manager2.result(cid)
                assert result.completed == serial.completed
                assert result.failed == serial.failed == {}
                assert result.quarantined == serial.quarantined == {}
                assert result.attempts == serial.attempts
            finally:
                server2.stop(graceful=True)
        finally:
            for w in workers:
                w.join(timeout=30.0)
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=5.0)
