"""Tests for the HA campaign service (PR: manager failover + chaos).

Covers the fencing-epoch machinery (persistence, both rejection
directions, the HTTP 409 contract), journal replication
(``records_since`` / ``append_replica`` / mirrored snapshots), the
lease-reclaim path that carries in-flight shards across a failover, the
reclaim grace window, idempotent worker registration and fail dedupe,
the failover-aware ``ManagerClient`` (endpoint rotation, 502 retry,
truncated-body retry), the deterministic network fault injector
(probabilities, partitions, duplication), the duplicate-delivery
idempotence property (every worker-facing POST replayed twice must
leave state identical to single delivery), the ``StandbyManager``
sync/promote lifecycle, campaign-aware result-store gc, and the
``repro drill`` acceptance property: a campaign that loses its leader
mid-run — under injected network faults, a vanished worker and a
partition window — finishes counter-for-counter identical to a serial
fault-free run, with zero shard re-executed.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.chaos.net import (
    FaultyTransport,
    InjectedNetworkError,
    NetFaultInjector,
    NetFaultPolicy,
)
from repro.cli import build_parser, main as cli_main
from repro.errors import FencedWriteError, ServiceError
from repro.resilience import IncidentRecorder, SupervisorPolicy
from repro.service import (
    CampaignManager,
    CampaignSpec,
    CompleteRequest,
    DrillSpec,
    Journal,
    LeaseQueue,
    ManagerClient,
    ResultGcPolicy,
    StandbyManager,
    collect_garbage,
    load_epoch,
    referenced_result_keys,
    run_drill,
    shard_result_key,
    store_epoch,
)
from repro.service.api import ManagerServer
from repro.service.drill import REQUIRED_INCIDENTS


class Clock:
    """Deterministic monotonic clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


FAST = SupervisorPolicy(shard_deadline_s=5.0, max_shard_failures=3)
SPEC = CampaignSpec(workloads=("apache",), abtb_sizes=(16,))


def _summary(key: str = "x") -> dict:
    return {"probe": key}


def _complete(manager, cid: str, key: str, worker: str = "w001", epoch: int = 0):
    return manager.complete(
        CompleteRequest(
            campaign_id=cid,
            key=key,
            worker_id=worker,
            outcome={"summary": _summary(key), "attempts": 1},
            epoch=epoch,
        )
    )


# --------------------------------------------------------------- epochs


class TestFencingEpoch:
    def test_epoch_persists_and_survives_corruption(self, tmp_path):
        path = tmp_path / "epoch.json"
        assert load_epoch(path) == 1  # missing file: default, never invented high
        store_epoch(path, 7)
        assert load_epoch(path) == 7
        path.write_text("{not json")
        assert load_epoch(path) == 1  # corruption degrades, never escalates

    def test_manager_loads_and_stores_epoch(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        assert manager.epoch == 1
        store_epoch(tmp_path / "svc2" / "epoch.json", 4)
        manager2 = CampaignManager(tmp_path / "svc2", policy=FAST)
        assert manager2.epoch == 4

    def test_stale_epoch_write_is_fenced_not_merged(self, tmp_path):
        recorder = IncidentRecorder()
        manager = CampaignManager(tmp_path / "svc", policy=FAST, recorder=recorder)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        with pytest.raises(FencedWriteError):
            _complete(manager, cid, key, epoch=99)
        # Nothing was merged: the shard is still pending.
        assert manager.campaigns[cid].shards[key].state == "pending"
        kinds = [i.kind for i in recorder.incidents]
        assert "fenced_write" in kinds

    def test_epoch_zero_is_accepted_for_pre_ha_workers(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        assert _complete(manager, cid, key, epoch=0)["status"] == "completed"

    def test_fenced_write_answers_409_over_http(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        server = ManagerServer(manager, port=0)
        server.start()
        try:
            client = ManagerClient(server.url, retries=0)
            status, body = client.post(
                "/shards/complete",
                {
                    "campaign_id": "c0001",
                    "key": "k",
                    "worker_id": "w",
                    "outcome": {"failed": "probe"},
                    "epoch": 99,
                },
            )
            assert status == 409
            assert body["fenced"] is True
            assert body["epoch"] == manager.epoch
            assert body["request_epoch"] == 99
        finally:
            server.stop(graceful=True)

    def test_lease_renew_and_fail_are_fenced_too(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        manager.submit(SPEC)
        with pytest.raises(FencedWriteError):
            manager.lease("w001", epoch=5)
        with pytest.raises(FencedWriteError):
            manager.renew("L1", "w001", epoch=5)
        with pytest.raises(FencedWriteError):
            manager.fail("c0001", "k", "boom", "w001", epoch=5)


# --------------------------------------------------------- replication


class TestJournalReplication:
    def test_records_since_and_replica_append_mirror_exactly(self, tmp_path):
        leader = Journal(tmp_path / "leader")
        leader.open_for_append(leader.load().last_seq)
        for n in range(3):
            leader.append("submit", {"n": n})

        follower = Journal(tmp_path / "follower")
        follower.open_for_append(follower.load().last_seq)
        applied = sum(
            follower.append_replica(r) for r in leader.records_since(0)
        )
        assert applied == 3
        assert follower.seq == leader.seq
        # At-least-once: re-applying the same tail is a clean no-op.
        assert not any(
            follower.append_replica(r) for r in leader.records_since(0)
        )
        # The mirror replays to the same records.
        follower.close()
        reread = Journal(tmp_path / "follower").load()
        assert [r["data"] for r in reread.records] == [{"n": 0}, {"n": 1}, {"n": 2}]

    def test_snapshot_mirror_carries_the_leader_seq(self, tmp_path):
        follower = Journal(tmp_path / "f")
        follower.open_for_append(follower.load().last_seq)
        follower.write_snapshot({"campaigns": {}}, seq=42)
        assert follower.seq == 42
        assert follower.snapshot_seq == 42
        follower.append("submit", {"after": True})
        assert follower.seq == 43

    def test_replication_state_endpoint_serves_tail_and_snapshot(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        state = manager.replication_state(0)
        assert state["epoch"] == 1
        assert state["seq"] == manager.journal.seq
        assert [r["type"] for r in state["records"]] == ["submit"]
        # A follower older than the last compaction gets a full snapshot.
        manager._snapshot()
        state = manager.replication_state(0)
        assert "snapshot" in state and state["records"] == []
        assert cid in state["snapshot"]["state"]["campaigns"]


# ------------------------------------------------------ reclaim + grace


class TestLeaseReclaim:
    def test_reclaim_reestablishes_a_forgotten_lease(self, tmp_path):
        # A promoted/restarted manager forgot all leases (soft state);
        # the in-flight worker's heartbeat re-establishes its own.
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        renewed = manager.renew(
            "L777", "w001", epoch=0, reclaim=(cid, key)
        )
        assert renewed is not None and renewed["reclaimed"] is True
        assert renewed["lease_id"] == "L777"  # requested id honored
        # And the shard completes under the reclaimed lease.
        assert _complete(manager, cid, key)["status"] == "completed"

    def test_reclaim_refuses_terminal_and_foreign_shards(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        _complete(manager, cid, key)
        assert manager.renew("L1", "w001", reclaim=(cid, key)) is None
        assert manager.renew("L1", "w001", reclaim=(cid, "nope")) is None
        assert manager.renew("L1", "w001", reclaim=("c9", key)) is None

    def test_queue_reclaim_is_exclusive(self):
        clock = Clock()
        queue = LeaseQueue(policy=FAST, clock=clock)
        queue.add("s1", {})
        lease, _ = queue.acquire("w1")
        # Another worker cannot steal a live lease via reclaim.
        assert queue.reclaim("s1", "w2", "L9") is None
        # The holder reclaiming its own live lease just renews it.
        again = queue.reclaim("s1", "w1", lease.lease_id)
        assert again is not None and again.lease_id == lease.lease_id

    def test_grace_window_blocks_grants_but_not_reclaims(self, tmp_path):
        clock = Clock()
        manager = CampaignManager(
            tmp_path / "svc", policy=FAST, clock=clock, reclaim_grace_s=10.0
        )
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        manager.register_worker("idle")
        assert manager.lease("w001") is None  # grants held back
        renewed = manager.renew("L1", "w002", reclaim=(cid, key))
        assert renewed is not None and renewed["reclaimed"] is True
        clock.t = 11.0
        # Window over; the shard is leased (to its reclaimer) so a fresh
        # grant still finds nothing — complete it and check liveness.
        assert _complete(manager, cid, key, worker="w002")["status"] == "completed"


# ------------------------------------------- registration + fail dedupe


class TestIdempotentDelivery:
    def test_reregistration_keeps_the_worker_id(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        first = manager.register_worker("a")
        again = manager.register_worker("a", worker_id=first["worker_id"])
        assert again["worker_id"] == first["worker_id"]
        assert len(manager.workers) == 1
        assert again["epoch"] == manager.epoch

    def test_foreign_worker_id_is_adopted_not_collided(self, tmp_path):
        # A worker failing over brings the id the old leader granted it;
        # the new manager adopts it and steps its counter past it.
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        grant = manager.register_worker("survivor", worker_id="w007-old")
        assert grant["worker_id"] == "w007-old"
        fresh = manager.register_worker("newcomer")
        assert fresh["worker_id"] != "w007-old"
        assert len(manager.workers) == 2

    def test_duplicate_fail_burns_one_unit_of_quarantine_budget(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        first = manager.fail(cid, key, "boom", "w001", attempt=1)
        second = manager.fail(cid, key, "boom", "w001", attempt=1)
        assert first["status"] != "deduped"
        assert second["status"] == "deduped"
        assert manager.campaigns[cid].shards[key].failures == 1


# ------------------------------------------------------- client failover


def _transport_script(script: list):
    """A transport that pops canned behaviours: an exception instance to
    raise, or a ``(status, bytes)`` tuple to return."""

    calls: list[str] = []

    def transport(url, method, data, timeout_s):  # noqa: ARG001
        calls.append(url)
        action = script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action

    transport.calls = calls
    return transport


class TestManagerClientFailover:
    def test_connection_failure_rotates_to_the_next_endpoint(self):
        transport = _transport_script(
            [ConnectionError("down"), (200, b'{"ok": true}')]
        )
        client = ManagerClient(
            ["http://a", "http://b"],
            retries=3,
            retry_delay_s=0.0,
            sleep_fn=lambda s: None,
            transport=transport,
        )
        status, body = client.get("/healthz")
        assert (status, body) == (200, {"ok": True})
        assert client.base_url == "http://b"
        assert client.failovers == 1
        assert [u.split("/healthz")[0] for u in transport.calls] == [
            "http://a", "http://b",
        ]

    def test_injected_502_is_retried_in_place(self):
        transport = _transport_script(
            [(502, b'{"error": "injected"}'), (200, b'{"ok": true}')]
        )
        client = ManagerClient(
            "http://a", retries=3, retry_delay_s=0.0,
            sleep_fn=lambda s: None, transport=transport,
        )
        assert client.get("/x") == (200, {"ok": True})
        assert client.failovers == 0  # same endpoint, just retried

    def test_503_is_not_retried(self):
        # 503 is the graceful-shutdown answer; retrying it would hide
        # the drain signal from workers.
        transport = _transport_script([(503, b'{"error": "stopping"}')])
        client = ManagerClient(
            "http://a", retries=3, retry_delay_s=0.0,
            sleep_fn=lambda s: None, transport=transport,
        )
        status, _ = client.post("/leases", {"worker_id": "w"})
        assert status == 503

    def test_truncated_body_is_a_transport_failure_not_an_answer(self):
        transport = _transport_script(
            [(200, b'{"worker_id": "w00'), (200, b'{"worker_id": "w001"}')]
        )
        client = ManagerClient(
            "http://a", retries=3, retry_delay_s=0.0,
            sleep_fn=lambda s: None, transport=transport,
        )
        assert client.post("/workers/register", {}) == (
            200, {"worker_id": "w001"},
        )

    def test_exhausted_retries_raise_service_error(self):
        transport = _transport_script([ConnectionError("down")] * 4)
        client = ManagerClient(
            ["http://a", "http://b"], retries=3, retry_delay_s=0.0,
            sleep_fn=lambda s: None, transport=transport,
        )
        with pytest.raises(ServiceError):
            client.get("/x")


# --------------------------------------------------------- net injector


class TestNetFaultInjector:
    def test_same_seed_same_faults(self):
        outcomes = []
        for _ in range(2):
            injector = NetFaultInjector(policy=NetFaultPolicy(seed=42, drop=0.5))
            run = []
            for _ in range(32):
                try:
                    injector.exchange(
                        lambda *a: (200, b"{}"), "http://x", "GET", None, 1.0
                    )
                    run.append("ok")
                except InjectedNetworkError:
                    run.append("drop")
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert "drop" in outcomes[0] and "ok" in outcomes[0]

    def test_request_partition_never_reaches_the_far_side(self):
        injector = NetFaultInjector()
        injector.partition("http://x", direction="request")
        hits = []
        with pytest.raises(InjectedNetworkError):
            injector.exchange(
                lambda *a: hits.append(1) or (200, b"{}"),
                "http://x/leases", "POST", b"{}", 1.0,
            )
        assert hits == []
        injector.heal("http://x")
        status, _ = injector.exchange(
            lambda *a: (200, b"{}"), "http://x/leases", "POST", b"{}", 1.0
        )
        assert status == 200

    def test_response_partition_applies_the_write_but_cuts_the_answer(self):
        injector = NetFaultInjector()
        injector.partition("http://x", direction="response")
        hits = []
        with pytest.raises(InjectedNetworkError):
            injector.exchange(
                lambda *a: hits.append(1) or (200, b"{}"),
                "http://x/shards/complete", "POST", b"{}", 1.0,
            )
        assert hits == [1]  # the nasty half: applied, unacknowledged

    def test_duplicate_delivers_posts_twice_gets_second_response(self):
        injector = NetFaultInjector(policy=NetFaultPolicy(duplicate=1.0))
        answers = [(200, b'{"n": 1}'), (200, b'{"n": 2}')]
        status, raw = injector.exchange(
            lambda *a: answers.pop(0), "http://x", "POST", b"{}", 1.0
        )
        assert (status, raw) == (200, b'{"n": 2}')
        # GETs are never duplicated (they are reads).
        answers = [(200, b'{"n": 1}')]
        injector.exchange(lambda *a: answers.pop(0), "http://x", "GET", None, 1.0)
        assert answers == []

    def test_faults_are_recorded_as_incidents(self):
        recorder = IncidentRecorder()
        injector = NetFaultInjector(
            policy=NetFaultPolicy(mangle=1.0), recorder=recorder
        )
        status, _ = injector.exchange(
            lambda *a: (200, b"{}"), "http://x", "GET", None, 1.0
        )
        assert status == 502
        assert [i.kind for i in recorder.incidents] == ["net_fault"]
        assert injector.counts == {"mangle": 1}


# ----------------------------------- duplicate-delivery property (HTTP)


def _scripted_state(tmp_path, name: str, duplicate: bool) -> dict:
    """Run the same worker-facing POST script against a live server,
    optionally with every POST duplicated, and return the observable
    state."""
    recorder = IncidentRecorder()
    manager = CampaignManager(tmp_path / name, policy=FAST, recorder=recorder)
    server = ManagerServer(manager, port=0)
    server.start()
    try:
        injector = NetFaultInjector(
            policy=NetFaultPolicy(duplicate=1.0 if duplicate else 0.0)
        )
        client = ManagerClient(
            server.url, retries=4, retry_delay_s=0.0,
            sleep_fn=lambda s: None, transport=FaultyTransport(injector),
        )
        # Submit through a clean control client: submit is control-plane
        # and deliberately not id-keyed (its duplicate semantics are the
        # store-dedupe test below).  Every *worker-facing* POST goes
        # through the duplicating transport.
        control = ManagerClient(server.url, retries=0)
        status, body = control.post(
            "/campaigns", {"workloads": ["apache"], "abtb_sizes": [16, 64]}
        )
        assert status == 201
        cid = body["campaign_id"]
        # Registration carries an explicit worker_id: that is what makes
        # a duplicated register re-register instead of minting a ghost.
        status, _ = client.post(
            "/workers/register", {"name": "dup", "worker_id": "w9"}
        )
        assert status == 200
        status, grant = client.post("/leases", {"worker_id": "w9"})
        assert status == 200 and grant["lease"]
        lease = grant["lease"]
        status, _ = client.post(
            f"/leases/{lease['lease_id']}/renew",
            {"worker_id": "w9", "progress": {"events_done": 5}},
        )
        assert status == 200
        status, done = client.post(
            "/shards/complete",
            {
                "campaign_id": lease["campaign_id"],
                "key": lease["key"],
                "worker_id": "w9",
                "outcome": {"summary": {"probe": 1}, "attempts": 1},
            },
        )
        assert status == 200
        status, second = client.post("/leases", {"worker_id": "w9"})
        assert status == 200 and second["lease"]
        status, failed = client.post(
            "/shards/fail",
            {
                "campaign_id": second["lease"]["campaign_id"],
                "key": second["lease"]["key"],
                "worker_id": "w9",
                "error": "scripted failure",
                "attempt": int(second["lease"]["attempt"]),
            },
        )
        assert status == 200
        return {
            "campaign": {
                k: v
                for k, v in manager.status(cid).items()
                if k in ("state", "shards")
            },
            "failures": {
                key: meta.failures
                for key, meta in manager.campaigns[cid].shards.items()
            },
            "workers": sorted(manager.workers),
            "store_keys": sorted(manager.store.keys()),
            "incident_kinds": [i.kind for i in recorder.incidents],
        }
    finally:
        server.stop(graceful=True)


class TestDuplicateDeliveryProperty:
    def test_every_worker_post_replayed_twice_is_a_noop(self, tmp_path):
        plain = _scripted_state(tmp_path, "plain", duplicate=False)
        doubled = _scripted_state(tmp_path, "doubled", duplicate=True)
        assert doubled == plain

    def test_duplicated_submit_converges_via_the_result_store(self, tmp_path):
        # Submit is control-plane and not id-keyed, so a duplicated
        # submit makes a second campaign — but once results exist, the
        # duplicate completes instantly from the store: same counters,
        # zero re-execution.
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        _complete(manager, cid, key)
        dup = manager.submit(SPEC)
        assert manager.status(dup)["state"] == "complete"
        assert manager.result(dup).completed == manager.result(cid).completed


# ------------------------------------------------------------- standby


class TestStandbyManager:
    def _leader(self, tmp_path):
        recorder = IncidentRecorder()
        manager = CampaignManager(tmp_path / "leader", policy=FAST, recorder=recorder)
        server = ManagerServer(manager, port=0)
        server.start()
        return manager, server

    def test_sync_mirrors_journal_and_results(self, tmp_path):
        manager, server = self._leader(tmp_path)
        try:
            cid = manager.submit(SPEC)
            key = next(iter(manager.campaigns[cid].shards))
            manager.register_worker("w")
            _complete(manager, cid, key)
            standby = StandbyManager(
                tmp_path / "standby", leader_url=server.url, policy=FAST
            )
            standby.sync_once()
            assert standby.applied_seq == manager.journal.seq
            assert standby.store.keys() == manager.store.keys()
            assert standby.leader_epoch == manager.epoch
        finally:
            server.stop(graceful=True)

    def test_promotion_bumps_epoch_and_recovers_every_completion(self, tmp_path):
        manager, server = self._leader(tmp_path)
        recorder = IncidentRecorder()
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        _complete(manager, cid, key)
        standby = StandbyManager(
            tmp_path / "standby",
            leader_url=server.url,
            policy=FAST,
            recorder=recorder,
            poll_interval_s=0.01,
            misses_to_promote=2,
            reclaim_grace_s=0.0,
        )
        standby.sync_once()
        server.stop(graceful=False)  # leader dies, journal left open
        promoted = standby.run()  # misses accumulate, then promotes
        assert promoted is not None
        assert promoted.epoch == manager.epoch + 1
        assert promoted.status(cid)["state"] == "complete"
        assert promoted.result(cid).completed
        kinds = [i.kind for i in recorder.incidents]
        assert "leader_lost" in kinds and "promoted" in kinds
        # The fence works in both directions afterwards.
        with pytest.raises(FencedWriteError):
            _complete(manager, cid, key, epoch=promoted.epoch)
        with pytest.raises(FencedWriteError):
            _complete(promoted, cid, key, epoch=manager.epoch)

    def test_stopped_standby_returns_none_without_promoting(self, tmp_path):
        manager, server = self._leader(tmp_path)
        try:
            standby = StandbyManager(
                tmp_path / "standby",
                leader_url=server.url,
                poll_interval_s=0.01,
                misses_to_promote=1000,
            )
            thread = threading.Thread(target=standby.run, daemon=True)
            thread.start()
            time.sleep(0.1)
            standby.stop()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert standby.manager is None
            assert standby.sync_rounds > 0
        finally:
            server.stop(graceful=True)


# ------------------------------------------------------------------ gc


class TestResultGc:
    def _populated(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        _complete(manager, cid, key)
        # Two orphans: results no live campaign references.
        manager.store.put(
            shard_result_key("nginx", 64, "smoke", "reference", None),
            {"orphan": 1}, {},
        )
        manager.store.put(
            shard_result_key("redis", 64, "smoke", "reference", None),
            {"orphan": 2}, {},
        )
        manager.shutdown()
        return tmp_path / "svc", manager.campaigns[cid].shards[key].result_key

    def test_policy_refuses_to_guess(self):
        with pytest.raises(ServiceError):
            ResultGcPolicy()

    def test_live_campaign_results_are_never_evicted(self, tmp_path):
        data_dir, live_key = self._populated(tmp_path)
        assert live_key in referenced_result_keys(data_dir)
        recorder = IncidentRecorder()
        report = collect_garbage(
            data_dir, ResultGcPolicy(max_age_s=0.0), recorder=recorder
        )
        assert report.examined == 3
        assert report.protected == 1
        assert len(report.evicted) == 2
        assert live_key not in report.evicted
        assert [i.kind for i in recorder.incidents] == [
            "result_evicted", "result_evicted",
        ]
        # The store now holds exactly the protected entry.
        remaining = collect_garbage(data_dir, ResultGcPolicy(max_age_s=0.0))
        assert remaining.examined == 1 and not remaining.evicted

    def test_count_retention_keeps_newest_unprotected(self, tmp_path):
        data_dir, _ = self._populated(tmp_path)
        report = collect_garbage(data_dir, ResultGcPolicy(max_count=1))
        assert len(report.evicted) == 1  # oldest orphan only

    def test_dry_run_deletes_nothing(self, tmp_path):
        data_dir, _ = self._populated(tmp_path)
        report = collect_garbage(
            data_dir, ResultGcPolicy(max_age_s=0.0, dry_run=True)
        )
        assert len(report.evicted) == 2 and report.dry_run
        # Nothing actually went away.
        again = collect_garbage(
            data_dir, ResultGcPolicy(max_age_s=0.0, dry_run=True)
        )
        assert again.examined == 3

    def test_cancelled_campaigns_protect_nothing(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        cid = manager.submit(SPEC)
        key = next(iter(manager.campaigns[cid].shards))
        _complete(manager, cid, key)
        manager.cancel(cid)
        manager.shutdown()
        assert referenced_result_keys(tmp_path / "svc") == set()

    def test_gc_cli(self, tmp_path, capsys):
        data_dir, _ = self._populated(tmp_path)
        rc = cli_main(
            [
                "service", "gc",
                "--data-dir", str(data_dir),
                "--max-age-s", "0",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted_count"] == 2 and payload["protected"] == 1


# ------------------------------------------------------------ sweeper


class TestSweeperHardening:
    def test_sweep_survives_transient_tick_failures(self, tmp_path):
        manager = CampaignManager(tmp_path / "svc", policy=FAST)
        server = ManagerServer(manager, port=0, idle_retry_s=0.01)
        original_tick = manager.tick
        blew_up = threading.Event()
        ticked_after = threading.Event()

        def flaky_tick():
            if not blew_up.is_set():
                blew_up.set()
                raise RuntimeError("transient sweep hiccup")
            ticked_after.set()
            return original_tick()

        manager.tick = flaky_tick
        server.start()
        try:
            assert ticked_after.wait(5.0), "sweeper died on a transient error"
        finally:
            manager.tick = original_tick
            server.stop(graceful=True)


# --------------------------------------------------------------- drill


class TestDrill:
    def test_drill_parser(self):
        parser = build_parser()
        args = parser.parse_args(
            ["drill", "--root", "/tmp/d", "--seed", "7", "--abtb", "16", "64"]
        )
        assert args.seed == 7 and args.abtb == [16, 64]
        args = parser.parse_args(
            ["serve", "--data-dir", "/tmp/s", "--follow", "http://leader:1"]
        )
        assert args.follow == "http://leader:1"
        args = parser.parse_args(
            ["worker", "--manager", "http://a:1", "http://b:2"]
        )
        assert args.manager == ["http://a:1", "http://b:2"]

    def test_acceptance_leader_kill_promotion_and_faults(self, tmp_path):
        """The PR's acceptance property: fixed-seed drill — vanished
        worker + leader kill + promotion + partition window under
        network faults — finishes counter-identical to serial with zero
        re-execution and a fully accounted incident log."""
        spec = DrillSpec(
            abtb_sizes=(16, 64),
            workers=2,
            shard_deadline_s=4.0,
            partition_window_s=0.3,
            seed=1337,
        )
        report = run_drill(spec, tmp_path / "drill")
        assert report.error == ""
        assert report.counters_match, (report.serial, report.service)
        assert report.zero_reexecution, report.worker_stats
        assert report.probes_fenced
        assert report.missing_kinds == []
        assert report.log_problems == []
        assert report.state == "complete"
        assert report.exit_code == 0
        assert report.failovers == 1
        for kind in REQUIRED_INCIDENTS:
            assert report.incident_counts.get(kind, 0) > 0, kind
