"""Tests for the resilience layer.

Covers the integrity envelope (checksummed, schema-versioned artifacts),
checkpoint-corruption handling in both the machine cache and the campaign
checkpoint, the binary trace codec's corruption taxonomy, the campaign
supervisor (kill/requeue, spill salvage, hang/quarantine), the backend
divergence watchdog, the incident recorder, and the ``incidents`` CLI.

The acceptance property threaded through the campaign tests: a campaign
that survives a SIGKILLed worker, a corrupted machine checkpoint and a
forced backend divergence must still produce counters identical to an
unperturbed serial reference run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import (
    CheckpointCorruptionError,
    ExperimentError,
    TraceCorruptionError,
    TraceError,
)
from repro.experiments.runner import (
    _load_checkpoint,
    _save_checkpoint,
    run_campaign,
    run_pair,
    summarize_pair,
)
from repro.experiments.scale import SMOKE
from repro.isa import events as ev
from repro.resilience import (
    CampaignSupervisor,
    FaultPlan,
    IncidentKind,
    IncidentRecorder,
    ShardState,
    SupervisorPolicy,
    WatchdogPolicy,
    read_artifact,
    validate_incident_log,
    write_artifact,
)
from repro.resilience.incidents import load_incident_log
from repro.trace.batch import TRACE_HEADER_SIZE, TraceBatch
from repro.uarch import CPU
from repro.uarch.machine import (
    MACHINE_STATE_SCHEMA,
    MACHINE_STATE_VERSION,
    CheckpointStore,
    MachineState,
)

# Fast-converging knobs for supervisor tests: short heartbeats, short
# deadlines, near-instant backoff.  Wall clock per test stays well under
# the shortest deadline * retry budget.
FAST = SupervisorPolicy(
    shard_deadline_s=2.0,
    heartbeat_interval_s=0.05,
    max_shard_failures=3,
    backoff_base_s=0.05,
    backoff_factor=2.0,
    poll_interval_s=0.02,
)


# ------------------------------------------------------------------ helpers


def _echo_worker(payload):
    """Module-level (hence picklable under spawn) campaign worker."""
    return {
        "key": payload["key"],
        "failed": False,
        "attempts": 1,
        "retries": 0,
        "summary": {"value": payload["value"] * 2},
        "incidents": [],
    }


def _raising_worker(payload):
    raise RuntimeError(f"worker bug for {payload['key']}")


def _machine_state() -> MachineState:
    cpu = CPU()
    cpu.run([ev.block(0x1000, 50), ev.call_direct(0x10C8, 0x2000), ev.block(0x2000, 10)])
    return MachineState.capture(cpu, trace_position=3)


def _strip_divergence(completed: dict) -> dict:
    """Campaign counters with the watchdog's marker flag removed."""
    out = {}
    for key, summary in completed.items():
        summary = dict(summary)
        summary.pop("diverged_backend", None)
        out[key] = summary
    return out


# ------------------------------------------------------ integrity envelope


class TestIntegrityEnvelope:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.json"
        payload = {"b": [1, 2, 3], "a": {"nested": True}}
        write_artifact(path, payload, "repro.test", 1)
        assert read_artifact(path, "repro.test", 1) == payload

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "repro.test", 1)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptionError) as exc:
            read_artifact(path, "repro.test", 1)
        assert exc.value.reason == "not-json"

    def test_bitflip_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"counter": 12345}, "repro.test", 1)
        path.write_text(path.read_text().replace("12345", "12346"))
        with pytest.raises(CheckpointCorruptionError) as exc:
            read_artifact(path, "repro.test", 1)
        assert exc.value.reason == "checksum-mismatch"

    def test_wrong_schema_and_version_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "repro.test", 1)
        with pytest.raises(CheckpointCorruptionError) as exc:
            read_artifact(path, "repro.other", 1)
        assert exc.value.reason == "wrong-schema"
        with pytest.raises(CheckpointCorruptionError) as exc:
            read_artifact(path, "repro.test", 2)
        assert exc.value.reason == "wrong-version"

    def test_not_an_envelope_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"just": "some json"}))
        with pytest.raises(CheckpointCorruptionError) as exc:
            read_artifact(path, "repro.test", 1)
        assert exc.value.reason == "bad-envelope"


# ------------------------------------------------- machine checkpoint store


class TestCheckpointStoreCorruption:
    def test_roundtrip_hits(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", _machine_state())
        loaded = store.load("k")
        assert loaded is not None and loaded.trace_position == 3
        assert store.hits == 1 and store.misses == 0

    def test_truncated_is_miss_with_incident(self, tmp_path):
        recorder = IncidentRecorder()
        store = CheckpointStore(tmp_path, recorder=recorder)
        path = store.save("k", _machine_state())
        path.write_text(path.read_text()[:40])
        assert store.load("k") is None
        assert store.misses == 1
        assert recorder.counts() == {"checkpoint_corrupt": 1}
        assert recorder.incidents[0].context["key"] == "k"

    def test_bitflip_is_miss_with_incident(self, tmp_path):
        recorder = IncidentRecorder()
        store = CheckpointStore(tmp_path, recorder=recorder)
        path = store.save("k", _machine_state())
        raw = bytearray(path.read_bytes())
        # Flip a bit in the payload body, past the envelope header.
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        assert store.load("k") is None
        assert recorder.counts() == {"checkpoint_corrupt": 1}

    def test_wrong_version_is_miss_with_incident(self, tmp_path):
        recorder = IncidentRecorder()
        store = CheckpointStore(tmp_path, recorder=recorder)
        path = store.save("k", _machine_state())
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = MACHINE_STATE_VERSION + 40
        path.write_text(json.dumps(envelope))
        assert store.load("k") is None
        assert recorder.counts() == {"checkpoint_corrupt": 1}
        assert "wrong-version" in recorder.incidents[0].context["reason"]

    def test_corrupt_checkpoint_never_restored(self, tmp_path):
        # The poisoned payload must not leak into a CPU even partially.
        store = CheckpointStore(tmp_path, recorder=IncidentRecorder())
        path = store.save("k", _machine_state())
        envelope = json.loads(path.read_text())
        envelope["payload"]["cpu"] = {"hostile": True}
        path.write_text(json.dumps(envelope))
        assert store.load("k") is None

    def test_envelope_schema_is_machine_state(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("k", _machine_state())
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == MACHINE_STATE_SCHEMA
        assert envelope["schema_version"] == MACHINE_STATE_VERSION


# -------------------------------------------------- campaign checkpoint


class TestCampaignCheckpointCorruption:
    def test_strict_mode_raises(self, tmp_path):
        path = tmp_path / "campaign.json"
        _save_checkpoint(path, {"a": {"n": 1}})
        path.write_text(path.read_text().replace('"n"', '"m"'))
        with pytest.raises(ExperimentError):
            _load_checkpoint(path)

    def test_recorder_mode_requeues(self, tmp_path):
        path = tmp_path / "campaign.json"
        _save_checkpoint(path, {"a": {"n": 1}})
        path.write_text(path.read_text()[:30])
        recorder = IncidentRecorder()
        assert _load_checkpoint(path, recorder=recorder) == {}
        assert recorder.counts() == {"campaign_checkpoint_corrupt": 1}

    def test_clean_checkpoint_loads_either_way(self, tmp_path):
        path = tmp_path / "campaign.json"
        _save_checkpoint(path, {"a": {"n": 1}})
        assert _load_checkpoint(path) == {"a": {"n": 1}}
        assert _load_checkpoint(path, recorder=IncidentRecorder()) == {"a": {"n": 1}}


# ------------------------------------------------------- binary trace codec


def _sample_batch() -> TraceBatch:
    return TraceBatch.from_events(
        [
            ev.block(0x1000, 5),
            ev.call_indirect(0x1014, 0x2000, 0x3000),
            ev.mark(("begin", "get", 1)),
            ev.cond_branch(0x1020, 0x1040, False),
            ev.mark(None),
            ev.store(0x1030, 0x4000),
        ]
    )


class TestTraceCodec:
    def test_roundtrip_bytes_and_file(self, tmp_path):
        batch = _sample_batch()
        assert list(TraceBatch.from_bytes(batch.to_bytes())) == list(batch)
        path = batch.save(tmp_path / "t.rprt")
        loaded = TraceBatch.load(path)
        assert list(loaded) == list(batch)
        # Tuple tags survive the JSON trip as tuples, not lists.
        assert loaded.tag_of(2) == ("begin", "get", 1)

    def test_truncated_header(self):
        raw = _sample_batch().to_bytes()
        with pytest.raises(TraceCorruptionError) as exc:
            TraceBatch.from_bytes(raw[:10])
        assert exc.value.offset == 10

    def test_truncated_tail_reports_offset(self):
        raw = _sample_batch().to_bytes()
        with pytest.raises(TraceCorruptionError) as exc:
            TraceBatch.from_bytes(raw[:-7])
        assert exc.value.offset == len(raw) - 7

    def test_bad_magic_and_version(self):
        raw = _sample_batch().to_bytes()
        with pytest.raises(TraceCorruptionError, match="magic"):
            TraceBatch.from_bytes(b"XXXX" + raw[4:])
        with pytest.raises(TraceCorruptionError, match="version"):
            TraceBatch.from_bytes(raw[:4] + (99).to_bytes(2, "little") + raw[6:])

    def test_bitflip_in_array_detected(self):
        raw = bytearray(_sample_batch().to_bytes())
        raw[-3] ^= 0xFF
        with pytest.raises(TraceCorruptionError, match="checksum"):
            TraceBatch.from_bytes(bytes(raw))

    def test_bitflip_in_tags_detected(self):
        raw = bytearray(_sample_batch().to_bytes())
        raw[TRACE_HEADER_SIZE + 1] ^= 0xFF
        with pytest.raises(TraceCorruptionError) as exc:
            TraceBatch.from_bytes(bytes(raw))
        assert exc.value.offset == TRACE_HEADER_SIZE

    def test_unknown_kind_reports_row(self):
        batch = _sample_batch()
        data = batch.data.copy()
        data["kind"][3] = 99
        raw = TraceBatch(data, batch.tags).to_bytes()
        with pytest.raises(TraceCorruptionError) as exc:
            TraceBatch.from_bytes(raw)
        assert exc.value.row == 3 and "kind 99" in str(exc.value)

    def test_out_of_range_tag_index_reports_row(self):
        batch = _sample_batch()
        data = batch.data.copy()
        data["tag"][0] = 77
        raw = TraceBatch(data, batch.tags).to_bytes()
        with pytest.raises(TraceCorruptionError) as exc:
            TraceBatch.from_bytes(raw)
        assert exc.value.row == 0

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(TraceCorruptionError, match="unreadable"):
            TraceBatch.load(tmp_path / "missing.rprt")

    def test_unencodable_tag_rejected_at_write(self):
        batch = TraceBatch.from_events([ev.mark(object())])
        with pytest.raises(TraceError, match="serialised"):
            batch.to_bytes()

    def test_negative_kind_rejected_by_event_decoder(self):
        from repro.isa.events import event_from_row

        with pytest.raises(TraceCorruptionError, match="unknown event kind"):
            event_from_row(-1, 0, 1, 4, 0, 0, 1)
        with pytest.raises(TraceCorruptionError, match="unknown event kind"):
            event_from_row(12, 0, 1, 4, 0, 0, 1)


# ---------------------------------------------------------- supervisor core


def _shards(n: int):
    return [(f"s{i}", {"key": f"s{i}", "value": i}) for i in range(n)]


class TestSupervisor:
    def test_clean_run(self, tmp_path):
        sup = CampaignSupervisor(
            _echo_worker, _shards(3), jobs=2, policy=FAST, spill_dir=tmp_path
        )
        report = sup.run()
        assert report.ok and not report.quarantined
        assert sorted(report.outcomes) == ["s0", "s1", "s2"]
        assert report.outcomes["s1"]["summary"] == {"value": 2}
        assert all(state is ShardState.COMPLETED for state in report.states.values())

    def test_sigkill_requeues_and_completes(self, tmp_path):
        recorder = IncidentRecorder()
        sup = CampaignSupervisor(
            _echo_worker,
            _shards(3),
            jobs=2,
            policy=FAST,
            recorder=recorder,
            fault_plan=FaultPlan(kill_match="s1", kill_attempts=1),
            spill_dir=tmp_path,
        )
        report = sup.run()
        assert report.ok
        # The killed shard still produced the same outcome as its siblings.
        assert report.outcomes["s1"]["summary"] == {"value": 2}
        counts = recorder.counts()
        assert counts["worker_death"] == 1 and counts["shard_requeued"] == 1

    def test_kill_after_spill_salvages(self, tmp_path):
        recorder = IncidentRecorder()
        sup = CampaignSupervisor(
            _echo_worker,
            _shards(2),
            jobs=2,
            policy=FAST,
            recorder=recorder,
            fault_plan=FaultPlan(kill_match="s0", kill_attempts=99, kill_after_spill=True),
            spill_dir=tmp_path,
        )
        report = sup.run()
        assert report.ok
        assert report.outcomes["s0"]["salvaged"] is True
        assert report.outcomes["s0"]["summary"] == {"value": 0}
        assert report.states["s0"] is ShardState.SALVAGED
        assert recorder.counts()["shard_salvaged"] == 1

    def test_hang_quarantines_after_budget(self, tmp_path):
        policy = SupervisorPolicy(
            shard_deadline_s=0.5,
            heartbeat_interval_s=0.05,
            max_shard_failures=2,
            backoff_base_s=0.05,
            poll_interval_s=0.02,
        )
        recorder = IncidentRecorder()
        sup = CampaignSupervisor(
            _echo_worker,
            _shards(2),
            jobs=2,
            policy=policy,
            recorder=recorder,
            fault_plan=FaultPlan(hang_match="s0", hang_attempts=99),
            spill_dir=tmp_path,
        )
        report = sup.run()
        # The campaign *completes*, degraded: the healthy shard's result is
        # present, the wedged one is quarantined with its failure history.
        assert not report.ok
        assert "s0" in report.quarantined and "s1" in report.outcomes
        assert report.states["s0"] is ShardState.QUARANTINED
        counts = recorder.counts()
        assert counts["worker_hang"] == 2 and counts["shard_quarantined"] == 1

    def test_worker_exception_quarantines(self, tmp_path):
        policy = SupervisorPolicy(
            shard_deadline_s=2.0,
            heartbeat_interval_s=0.05,
            max_shard_failures=2,
            backoff_base_s=0.02,
            poll_interval_s=0.02,
        )
        sup = CampaignSupervisor(
            _raising_worker, _shards(1), jobs=1, policy=policy, spill_dir=tmp_path
        )
        report = sup.run()
        assert not report.ok and "s0" in report.quarantined
        assert "RuntimeError" in report.quarantined["s0"]["last_error"]

    def test_duplicate_keys_rejected(self):
        from repro.errors import SupervisorError

        with pytest.raises(SupervisorError, match="unique"):
            CampaignSupervisor(_echo_worker, [("a", 1), ("a", 2)])


# --------------------------------------------------- watchdog + campaigns
#
# These drive real simulations at SMOKE scale, so they live behind a
# shared serial reference fixture to pay the baseline cost once.

WORKLOADS = ("apache", "memcached")
ABTB = (64,)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """Unperturbed serial campaign — the ground truth every resilient run
    must reproduce counter-for-counter."""
    return run_campaign(WORKLOADS, SMOKE, abtb_sizes=ABTB, jobs=1)


class TestWatchdog:
    def test_clean_batched_run_matches_reference(self):
        ref = run_pair("apache", SMOKE, abtb_entries=64)
        watched = run_pair(
            "apache",
            SMOKE,
            abtb_entries=64,
            backend="batched",
            watchdog=WatchdogPolicy(check_every=1),
        )
        assert summarize_pair(*watched) == summarize_pair(*ref)
        assert not watched[0].diverged and not watched[1].diverged
        assert watched[0].backend_used == "batched"

    def test_forced_divergence_falls_back_to_reference(self):
        ref = run_pair("apache", SMOKE, abtb_entries=64)
        recorder = IncidentRecorder()
        diverged = run_pair(
            "apache",
            SMOKE,
            abtb_entries=64,
            backend="batched",
            recorder=recorder,
            watchdog=WatchdogPolicy(check_every=1, force_diverge_at_check=1),
        )
        assert diverged[0].diverged and diverged[0].backend_used == "reference"
        counts = recorder.counts()
        assert counts["backend_divergence"] >= 1 and counts["backend_fallback"] >= 1
        # The marked summary differs from the reference ONLY by the marker.
        summary = summarize_pair(*diverged)
        assert summary.pop("diverged_backend") is True
        assert summary == summarize_pair(*ref)


class TestSupervisedCampaign:
    def test_survives_kill_corruption_and_divergence(
        self, serial_reference, tmp_path
    ):
        """The acceptance scenario: one campaign run survives a SIGKILLed
        worker, a corrupted machine checkpoint and a forced backend
        divergence — and its counters match the serial reference."""
        cache_dir = tmp_path / "machines"
        # Seed the machine cache, then corrupt one checkpoint in place.
        run_campaign(
            ("apache",), SMOKE, abtb_sizes=ABTB, jobs=1, machine_cache_dir=cache_dir
        )
        victims = sorted(cache_dir.glob("*.machine.json"))
        assert victims, "warm-up should have populated the machine cache"
        raw = bytearray(victims[0].read_bytes())
        raw[len(raw) // 2] ^= 0x01
        victims[0].write_bytes(bytes(raw))

        recorder = IncidentRecorder()
        checkpoint = tmp_path / "campaign.json"
        manifest = tmp_path / "manifest.json"
        result = run_campaign(
            WORKLOADS,
            SMOKE,
            abtb_sizes=ABTB,
            jobs=2,
            supervise=True,
            backend="batched",
            machine_cache_dir=cache_dir,
            checkpoint_path=checkpoint,
            manifest_path=manifest,
            recorder=recorder,
            supervisor_policy=FAST,
            fault_plan=FaultPlan(
                kill_match="memcached", kill_attempts=1, diverge_match="apache"
            ),
            watchdog=WatchdogPolicy(check_every=1),
        )
        assert result.ok and not result.degraded
        assert _strip_divergence(result.completed) == _strip_divergence(
            serial_reference.completed
        )
        # The divergence marker sits exactly on the faulted pair.
        diverged_keys = [
            k for k, s in result.completed.items() if s.get("diverged_backend")
        ]
        assert diverged_keys and all("apache" in k for k in diverged_keys)
        counts = recorder.counts()
        assert counts["worker_death"] >= 1
        assert counts["shard_requeued"] >= 1
        assert counts["checkpoint_corrupt"] >= 1
        assert counts["backend_divergence"] >= 1
        assert counts["backend_fallback"] >= 1
        # Manifest is a valid integrity artifact recording the whole story.
        payload = read_artifact(manifest, "repro.campaign-manifest", 1)
        assert sorted(payload["completed"]) == sorted(result.completed)
        assert payload["degraded"] is False
        assert payload["incident_counts"] == counts

    def test_quarantine_yields_degraded_partial_manifest(self, tmp_path):
        policy = SupervisorPolicy(
            shard_deadline_s=1.0,
            heartbeat_interval_s=0.05,
            max_shard_failures=1,
            backoff_base_s=0.05,
            poll_interval_s=0.02,
        )
        recorder = IncidentRecorder()
        manifest = tmp_path / "manifest.json"
        result = run_campaign(
            WORKLOADS,
            SMOKE,
            abtb_sizes=ABTB,
            jobs=2,
            supervise=True,
            recorder=recorder,
            supervisor_policy=policy,
            fault_plan=FaultPlan(hang_match="memcached", hang_attempts=99),
            manifest_path=manifest,
        )
        assert result.degraded and not result.ok and not result.failed
        assert any("memcached" in key for key in result.quarantined)
        assert all("apache" in key for key in result.completed)
        assert recorder.counts()["shard_quarantined"] == 1
        payload = read_artifact(manifest, "repro.campaign-manifest", 1)
        assert payload["degraded"] is True
        assert sorted(payload["quarantined"]) == sorted(result.quarantined)
        assert "quarantined" in result.render()

    def test_resume_after_kill_merges_identically(self, serial_reference, tmp_path):
        """SIGKILL mid-campaign, then resume from the incremental
        checkpoint: the merged report matches the serial reference."""
        checkpoint = tmp_path / "campaign.json"
        recorder = IncidentRecorder()
        first = run_campaign(
            WORKLOADS,
            SMOKE,
            abtb_sizes=ABTB,
            jobs=2,
            supervise=True,
            recorder=recorder,
            supervisor_policy=FAST,
            checkpoint_path=checkpoint,
            fault_plan=FaultPlan(kill_match="apache", kill_attempts=1),
        )
        assert first.ok and recorder.counts()["worker_death"] == 1
        # Resume: everything is already checkpointed, nothing re-runs.
        resumed = run_campaign(
            WORKLOADS,
            SMOKE,
            abtb_sizes=ABTB,
            jobs=2,
            supervise=True,
            supervisor_policy=FAST,
            checkpoint_path=checkpoint,
        )
        assert resumed.resumed == len(resumed.completed)
        assert resumed.completed == serial_reference.completed
        assert first.completed == serial_reference.completed


# ------------------------------------------------------- incident recorder


class TestIncidentRecorder:
    def test_counts_and_metrics(self, tmp_path):
        from repro.obs import Observability

        obs = Observability(metrics_out=str(tmp_path / "metrics.json"))
        recorder = obs.incident_recorder()
        recorder.record(IncidentKind.WORKER_DEATH, "shard died", key="s1")
        recorder.record(IncidentKind.WORKER_DEATH, "again", key="s1")
        recorder.record(IncidentKind.BACKEND_DIVERGENCE, "hash mismatch", severity="fatal")
        assert recorder.counts() == {"backend_divergence": 1, "worker_death": 2}
        assert obs.metrics.counter("incidents.total").value == 3
        assert obs.metrics.counter("incidents.worker_death").value == 2

    def test_jsonl_roundtrip_and_validation(self, tmp_path):
        recorder = IncidentRecorder(clock=lambda: 123.0)
        recorder.record(IncidentKind.TRACE_CORRUPT, "bad row", row=7)
        path = recorder.write_jsonl(tmp_path / "incidents.jsonl")
        assert validate_incident_log(path) == []
        loaded = load_incident_log(path)
        assert len(loaded) == 1
        assert loaded[0].kind == "trace_corrupt" and loaded[0].context == {"row": 7}

    def test_validation_flags_bad_lines(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        path.write_text(
            json.dumps({"schema_version": 1, "kind": "worker_death", "severity": "error",
                        "message": "ok", "timestamp": 1.0, "context": {}})
            + "\n{not json\n"
            + json.dumps({"schema_version": 1, "kind": "made_up", "severity": "error",
                          "message": "x", "timestamp": 1.0, "context": {}})
            + "\n"
        )
        problems = validate_incident_log(path)
        assert len(problems) == 2

    def test_extend_dicts_drops_garbage(self):
        recorder = IncidentRecorder()
        donor = IncidentRecorder(clock=lambda: 1.0)
        donor.record(IncidentKind.SHARD_SALVAGED, "from worker")
        absorbed = recorder.extend_dicts(donor.as_dicts() + [{"nope": True}, 42])
        assert absorbed == 1
        assert recorder.counts() == {"shard_salvaged": 1}


# ------------------------------------------------------------ incidents CLI


class TestIncidentsCli:
    def _write_log(self, tmp_path):
        recorder = IncidentRecorder(clock=lambda: 1.0)
        recorder.record(IncidentKind.WORKER_DEATH, "shard s1 died", key="s1")
        recorder.record(IncidentKind.CHECKPOINT_CORRUPT, "bad checkpoint")
        return recorder.write_jsonl(tmp_path / "incidents.jsonl")

    def test_summary_ok(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert cli_main(["incidents", str(path)]) == 0
        out = capsys.readouterr().out
        assert "worker_death" in out and "checkpoint_corrupt" in out

    def test_require_present_and_missing(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert cli_main(["incidents", str(path), "--require", "worker_death"]) == 0
        assert cli_main(["incidents", str(path), "--require", "backend_divergence"]) == 1

    def test_json_output(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert cli_main(["incidents", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"] == {"checkpoint_corrupt": 1, "worker_death": 1}

    def test_invalid_log_rejected(self, tmp_path, capsys):
        path = tmp_path / "incidents.jsonl"
        path.write_text("{broken\n")
        assert cli_main(["incidents", str(path)]) == 1
