"""Tests for the workload framework and the four calibrated applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.isa.events import count_instructions
from repro.isa.kinds import EventKind
from repro.trace.engine import LinkMode
from repro.uarch import CPU
from repro.workloads import ALL_WORKLOADS, Workload, apache, memcached
from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile


def small_config(**overrides) -> WorkloadConfig:
    """A fast workload for structural tests."""
    defaults = dict(
        name="small",
        libraries=(
            LibrarySpec("liba.so", n_functions=40, import_pairs=4),
            LibrarySpec("libb.so", n_functions=40),
        ),
        request_classes=(
            RequestClass("REQ", segments=20, segment_instr=30, call_prob=0.8,
                         phase_len=10, phase_set=2, app_phase_fns=3),
        ),
        app_functions=30,
        app_import_pairs=12,
        profile=PopularityProfile(core_size=4, core_mass=0.7, zipf_s=1.0),
        plt_sparsity=2,
        seed=99,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestWorkloadConfig:
    def test_distinct_pair_target(self):
        assert small_config().distinct_pair_target == 16

    def test_needs_request_classes(self):
        with pytest.raises(ConfigError):
            small_config(request_classes=())

    def test_cannot_import_more_than_defined(self):
        with pytest.raises(ConfigError):
            small_config(app_import_pairs=1000)


class TestWorkloadBuild:
    def test_modules_and_pairs_built(self):
        wl = Workload(small_config())
        assert set(wl.program.modules) == {"app", "liba.so", "libb.so"}
        assert len(wl._pairs_by_module["app"]) == 12
        assert len(wl._pairs_by_module["liba.so"]) == 4

    def test_plt_sparsity_pads_imports(self):
        wl = Workload(small_config())
        assert len(wl.program.module("app").imports()) == 24  # 12 used * 2

    def test_call_sites_inside_caller_text(self):
        wl = Workload(small_config())
        app = wl.program.module("app")
        lo, hi = app.text_range
        for pair in wl._pairs_by_module["app"]:
            for site in pair.sites:
                assert lo <= site < hi

    def test_deterministic_rebuild(self):
        a = Workload(small_config())
        b = Workload(small_config())
        events_a = list(a.trace(3))
        events_b = list(b.trace(3))
        assert events_a == events_b

    def test_different_seeds_differ(self):
        a = list(Workload(small_config(seed=1)).trace(2))
        b = list(Workload(small_config(seed=2)).trace(2))
        assert a != b


class TestTraceGeneration:
    def test_marks_bracket_requests(self):
        wl = Workload(small_config())
        events = list(wl.trace(3))
        tags = [e.tag for e in events if e.kind == EventKind.MARK]
        assert tags[0] == ("begin", "REQ", 0)
        assert tags[-1] == ("end", "REQ", 2)
        assert len(tags) == 6

    def test_marks_optional(self):
        wl = Workload(small_config())
        assert not any(
            e.kind == EventKind.MARK for e in wl.trace(2, include_marks=False)
        )

    def test_start_id_offsets_requests(self):
        wl = Workload(small_config())
        tags = [e.tag for e in wl.trace(2, start_id=10) if e.kind == EventKind.MARK]
        assert tags[0] == ("begin", "REQ", 10)

    def test_trampolines_present_in_dynamic_mode(self):
        wl = Workload(small_config())
        kinds = {e.kind for e in wl.trace(2)}
        assert EventKind.JMP_INDIRECT in kinds

    def test_static_mode_has_no_trampolines(self):
        wl = Workload(small_config(), mode=LinkMode.STATIC)
        events = list(wl.trace(3))
        assert not any(e.kind == EventKind.JMP_INDIRECT and e.tag == "plt" for e in events)

    def test_startup_touches_every_pair(self):
        wl = Workload(small_config())
        for _ in wl.startup_trace():
            pass
        assert wl.distinct_trampolines_touched == wl.config.distinct_pair_target

    def test_usage_stats_reset(self):
        wl = Workload(small_config())
        for _ in wl.startup_trace():
            pass
        wl.reset_usage_stats()
        assert wl.distinct_trampolines_touched == 0
        for _ in wl.trace(2):
            pass
        assert wl.distinct_trampolines_touched > 0

    def test_frequency_curve_sorted(self):
        wl = Workload(small_config())
        for _ in wl.trace(5):
            pass
        curve = wl.frequency_curve()
        assert curve == sorted(curve, reverse=True)
        assert sum(curve) == sum(wl.pair_counts.values())

    def test_context_switches_emitted(self):
        wl = Workload(small_config(context_switch_interval=500))
        kinds = [e.kind for e in wl.trace(5)]
        assert EventKind.CONTEXT_SWITCH in kinds

    def test_all_call_sites_enumerates(self):
        wl = Workload(small_config(sites_per_pair=2))
        sites = wl.all_call_sites()
        assert len(sites) == (12 + 4) * 2
        assert len({s for s, _, _ in sites}) == len(sites)  # unique addresses


class TestCalibration:
    """Coarse checks that each workload hits its paper targets."""

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_trampoline_pki_close_to_paper(self, name):
        module = ALL_WORKLOADS[name]
        wl = Workload(module.config())
        cpu = CPU()
        cpu.run(wl.startup_trace())
        snap = cpu.counters.copy()
        cpu.run(wl.trace(6, include_marks=False))
        window = cpu.counters.delta(snap)
        measured = window.pki("trampolines_executed")
        assert measured == pytest.approx(module.PAPER_TRAMPOLINE_PKI, rel=0.35)

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_design_universe_matches_table3(self, name):
        module = ALL_WORKLOADS[name]
        assert module.config().distinct_pair_target == module.PAPER_DISTINCT_TRAMPOLINES

    def test_apache_is_prefork(self):
        assert apache.PREFORK and not memcached.PREFORK

    def test_request_mix_weights_respected(self):
        wl = Workload(memcached.config())
        rng = np.random.default_rng(0)
        mix = wl.request_mix(500, rng)
        gets = sum(1 for rc in mix if rc.name == "GET")
        assert 0.8 < gets / 500 < 0.97  # nominal 0.9

    def test_instruction_volume_reasonable(self):
        wl = Workload(memcached.config())
        total = count_instructions(wl.trace(3, include_marks=False))
        assert 3_000 < total // 3 < 30_000  # per-request instructions
