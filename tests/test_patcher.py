"""Unit tests for the software call-site patching baseline."""

from __future__ import annotations

from repro.linker import CallSitePatcher, CompatLayout, DynamicLinker
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PAGE_SIZE, PhysicalMemory
from tests.conftest import tiny_specs


def _patched_setup(n_children: int = 0):
    exe, libs = tiny_specs()
    phys = PhysicalMemory()
    linker = DynamicLinker(phys)
    space = AddressSpace(phys, "parent")
    program = linker.link(exe, libs, CompatLayout(), space)
    children = [space.fork(f"c{i}") for i in range(n_children)]
    patcher = CallSitePatcher(program, children if children else [space])
    return program, patcher, phys, space, children


class TestPatchSite:
    def test_patch_rewrites_to_function(self):
        program, patcher, *_ = _patched_setup()
        site = program.module("app").function("main").entry + 32
        record = patcher.patch_site(site, "app", "printf")
        assert record is not None
        assert record.target == program.module("libc.so").function("printf").entry

    def test_patch_is_idempotent(self):
        program, patcher, *_ = _patched_setup()
        site = program.module("app").function("main").entry + 32
        first = patcher.patch_site(site, "app", "printf")
        second = patcher.patch_site(site, "app", "printf")
        assert first is second
        assert patcher.stats.sites_patched == 1

    def test_patch_tracks_pages_and_mprotects(self):
        program, patcher, *_ = _patched_setup()
        base = program.module("app").function("main").entry
        patcher.patch_site(base + 32, "app", "printf")
        patcher.patch_site(base + 64, "app", "memcpy")
        assert patcher.stats.sites_patched == 2
        assert patcher.stats.mprotect_calls == 4
        assert patcher.stats.pages_touched == 1  # same code page

    def test_bound_call_before_and_after(self):
        program, patcher, *_ = _patched_setup()
        site = program.module("app").function("main").entry + 32
        before = patcher.bound_call(site, "app", "printf")
        assert before.via_plt
        patcher.patch_site(site, "app", "printf")
        after = patcher.bound_call(site, "app", "printf")
        assert not after.via_plt

    def test_out_of_reach_with_classic_layout(self, tiny_program):
        patcher = CallSitePatcher(tiny_program, [])
        site = tiny_program.module("app").function("main").entry + 32
        record = patcher.patch_site(site, "app", "printf")
        assert record is None  # libraries are >2GB away
        assert patcher.stats.out_of_reach == 1

    def test_reach_check_can_be_disabled(self, tiny_program):
        patcher = CallSitePatcher(tiny_program, [], require_rel32=False)
        site = tiny_program.module("app").function("main").entry + 32
        assert patcher.patch_site(site, "app", "printf") is not None


class TestPatchCow:
    def test_each_child_copies_patched_page(self):
        program, patcher, phys, parent, children = _patched_setup(n_children=4)
        before = phys.total_frames
        site = program.module("app").function("main").entry + 32
        patcher.patch_site(site, "app", "printf")
        # All four children privatised the page holding the call site.
        assert phys.total_frames == before + 4
        assert patcher.stats.cow_copies == 4

    def test_second_patch_same_page_free(self):
        program, patcher, phys, parent, children = _patched_setup(n_children=2)
        base = program.module("app").function("main").entry
        patcher.patch_site(base + 32, "app", "printf")
        frames_after_first = phys.total_frames
        patcher.patch_site(base + 48, "app", "memcpy")
        assert phys.total_frames == frames_after_first

    def test_wasted_bytes_per_process(self):
        program, patcher, *_ = _patched_setup(n_children=2)
        base = program.module("app").function("main").entry
        patcher.patch_site(base + 32, "app", "printf")
        assert patcher.stats.wasted_bytes_per_process == PAGE_SIZE

    def test_patch_all_sites(self):
        program, patcher, *_ = _patched_setup(n_children=1)
        app = program.module("app")
        sites = [
            (app.function("main").entry + 32, "app", "printf"),
            (app.function("handler").entry + 32, "app", "x_parse"),
        ]
        records = patcher.patch_all_sites(sites)
        assert len(records) == 2
        assert patcher.is_patched(sites[0][0]) and patcher.is_patched(sites[1][0])
