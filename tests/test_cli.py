"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_scale(self):
        args = build_parser().parse_args(["run", "table2", "--scale", "paper"])
        assert args.experiment == "table2" and args.scale == "paper"

    def test_run_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])

    def test_compare_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "postgres"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("table2", "fig5", "memsave", "ablation"):
            assert eid in out

    def test_run_hwcost(self, capsys):
        assert main(["run", "hwcost"]) == 0
        out = capsys.readouterr().out
        assert "ABTB storage" in out
        assert "[PASS]" in out

    def test_compare_memcached(self, capsys):
        assert main(["compare", "memcached", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "skip rate" in out and "speedup" in out

    def test_run_all_parses(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"
