"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.obs.tracer import validate_chrome_trace


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_scale(self):
        args = build_parser().parse_args(["run", "table2", "--scale", "paper"])
        assert args.experiment == "table2" and args.scale == "paper"

    def test_run_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])

    def test_compare_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "postgres"])

    def test_profile_parses_with_defaults(self):
        args = build_parser().parse_args(["profile", "memcached"])
        assert args.command == "profile"
        assert args.requests == 80 and args.abtb == 256 and args.top == 10
        assert args.trace_out is None and args.sample_every == 2000

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "postgres"])

    def test_obs_flags_accepted_everywhere(self):
        for sub in (["run", "hwcost"], ["compare", "memcached"],
                    ["chaos"], ["campaign"], ["profile", "apache"]):
            args = build_parser().parse_args(
                sub + ["--trace-out", "t.json", "--metrics-out", "m.prom",
                       "--sample-every", "500"]
            )
            assert args.trace_out == "t.json"
            assert args.metrics_out == "m.prom"
            assert args.sample_every == 500

    def test_sample_every_rejects_non_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "memcached", "--sample-every", "lots"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("table2", "fig5", "memsave", "ablation"):
            assert eid in out

    def test_run_hwcost(self, capsys):
        assert main(["run", "hwcost"]) == 0
        out = capsys.readouterr().out
        assert "ABTB storage" in out
        assert "[PASS]" in out

    def test_compare_memcached(self, capsys):
        assert main(["compare", "memcached", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "skip rate" in out and "speedup" in out

    def test_run_all_parses(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "table2" in payload
        assert {"paper_ref", "description"} <= set(payload["table2"])

    def test_profile_memcached(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "memcached", "--requests", "40", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Hot trampolines (top 5 call sites)" in out
        assert "attributed to named call sites" in out
        # Default trace path derives from the workload name.
        trace = tmp_path / "memcached.profile.trace.json"
        assert trace.exists()
        assert validate_chrome_trace(json.loads(trace.read_text())) == []

    def test_compare_writes_observability_outputs(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main([
            "compare", "memcached", "--requests", "20",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--sample-every", "4000",
        ]) == 0
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        names = {json.loads(line)["name"] for line in metrics.read_text().splitlines()}
        assert any(n.startswith("enhanced.") and n.endswith("_pki") for n in names)

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["run", "nonesuch"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
