"""Tests for the dual-core coherence path (paper Section 3.2)."""

from __future__ import annotations

import pytest

from repro.chaos.oracle import CorrectnessOracle
from repro.core import TrampolineSkipMechanism
from repro.errors import ConfigError
from repro.isa.events import block, store
from repro.uarch import CPU
from repro.uarch.multicore import DualCoreSystem
from tests.test_cpu import FUNC, GOT, plt_call


class TestConstruction:
    def test_shared_l2(self):
        system = DualCoreSystem.with_shared_l2()
        assert system.cpus[0].l2 is system.cpus[1].l2
        assert system.cpus[0].l1i is not system.cpus[1].l1i

    def test_shared_l2_registered_as_component(self):
        # Regression: ``with_shared_l2`` used to rebind the ``l2``
        # attribute after construction, leaving cpu1's *registry-built*
        # private L2 in the components map — so snapshot/restore/describe
        # silently operated on a stale, cold cache.
        system = DualCoreSystem.with_shared_l2()
        cpu0, cpu1 = system.cpus
        assert cpu1.components["l2"] is cpu0.l2

    def test_shared_l2_snapshot_restore_roundtrip(self):
        system = DualCoreSystem.with_shared_l2()
        cpu0, cpu1 = system.cpus
        system.run([block(0x4000, 8), block(0x8000, 4)], [block(0x4000, 8)])
        system.finalize()
        snap0, snap1 = cpu0.snapshot(), cpu1.snapshot()
        # Both cores' snapshots must carry the live shared L2 — with
        # traffic in it — not an untouched private one.
        assert snap1["components"]["l2"] == snap0["components"]["l2"]
        assert snap1["components"]["l2"]["accesses"] > 0
        fresh = DualCoreSystem.with_shared_l2()
        fresh.cpus[0].restore(snap0)
        fresh.cpus[1].restore(snap1)
        assert fresh.cpus[0].l2 is fresh.cpus[1].l2
        assert fresh.cpus[1].snapshot() == snap1
        assert fresh.cpus[0].snapshot() == snap0

    def test_bad_slice_rejected(self):
        with pytest.raises(ConfigError):
            DualCoreSystem((CPU(), CPU()), slice_events=0)


class TestCoherence:
    def test_remote_got_store_flushes_sibling_abtb(self):
        mech = TrampolineSkipMechanism()
        server = CPU(mechanism=mech)
        other = CPU()
        system = DualCoreSystem((server, other))
        # Server core learns and skips; the other core rewrites the GOT.
        system.run(plt_call() * 5, [block(0x9000, 50), store(0x9100, GOT)])
        assert mech.stats.coherence_flushes == 1
        assert len(mech.abtb) == 0
        assert mech.stats.unsafe_skips == 0

    def test_unrelated_remote_stores_harmless(self):
        mech = TrampolineSkipMechanism()
        system = DualCoreSystem((CPU(mechanism=mech), CPU()))
        system.run(plt_call() * 5, [store(0x9100, 0x12345 + 8 * i) for i in range(50)])
        assert len(mech.abtb) == 1
        assert system.invalidations_delivered[0] == 50

    def test_recovery_after_remote_flush(self):
        mech = TrampolineSkipMechanism()
        server = CPU(mechanism=mech)
        system = DualCoreSystem((server, CPU()), slice_events=4)
        # 4-event slices: each plt_call is one slice; the remote store
        # lands between calls, then skipping resumes after one relearn.
        remote = [block(0x9000, 2)] * 3 + [store(0x9100, GOT)]
        system.run(plt_call() * 40, remote)
        counters = system.finalize()[0]
        total = counters.trampolines_skipped + counters.trampolines_executed
        assert total == 40
        assert counters.trampolines_skipped >= 36

    def test_both_cores_can_run_mechanisms(self):
        m0, m1 = TrampolineSkipMechanism(), TrampolineSkipMechanism()
        system = DualCoreSystem((CPU(mechanism=m0), CPU(mechanism=m1)))
        system.run(plt_call() * 10, plt_call() * 10)
        c0, c1 = system.finalize()
        assert c0.trampolines_skipped > 0
        assert c1.trampolines_skipped > 0
        # The resolver-free steady traces contain no stores, so neither
        # mechanism flushed the other.
        assert m0.stats.coherence_flushes == 0
        assert m1.stats.coherence_flushes == 0

    def test_shared_l2_sees_both_cores_lines(self):
        system = DualCoreSystem.with_shared_l2()
        system.run([block(0x4000, 8)], [block(0x4000, 8)])
        # Second core's fetch of the same line hits the shared L2.
        c0, c1 = system.finalize()
        assert c0.l2_misses == 1
        assert c1.l2_misses == 0


NEW_FUNC = FUNC + 0x4_0000


class TestCrossSliceStoreVisibility:
    """The module's visibility contract, audited by the stale-target oracle.

    A GOT store retired *mid-slice* by core 0 must flush core 1's ABTB
    before core 1's **next** slice begins (see the module docstring's
    "Intra-slice visibility window" section — visibility inside the
    concurrently-modelled slice is not promised, only at boundaries).
    """

    def _streams(self):
        # Core 0: one filler slice, then a slice with the GOT rewrite in
        # the middle (event 4 of 8) — retired mid-slice by construction.
        stream0 = (
            [block(0x9000 + 64 * i, 2) for i in range(8)]
            + [block(0xA000 + 64 * i, 2) for i in range(4)]
            + [store(0xA400, GOT)]
            + [block(0xB000 + 64 * i, 2) for i in range(3)]
        )
        # Core 1: slices of PLT calls (slice_events=8 = two 4-event
        # calls).  Slice 0 runs before the rewrite and targets FUNC;
        # slice 1 onward runs after core 0's store slice, so the trace
        # legitimately targets the rewritten NEW_FUNC.
        stream1 = plt_call() * 2
        for _ in range(6):
            stream1 += plt_call(NEW_FUNC)
        return stream0, stream1

    def _system(self, oracle, coherence_filter=None):
        mech = TrampolineSkipMechanism()
        core0 = CPU(hooks=oracle)  # the storer: oracle tracks GOT truth
        core1 = CPU(mechanism=mech, hooks=oracle)
        system = DualCoreSystem(
            (core0, core1), slice_events=8, coherence_filter=coherence_filter
        )
        return system, mech

    def test_store_visible_before_next_slice(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program, raise_on_violation=True)
        oracle.register_slot(GOT, FUNC)
        oracle.queue_truth(GOT, NEW_FUNC)
        system, mech = self._system(oracle)
        stream0, stream1 = self._streams()
        system.run(stream0, stream1)  # oracle raises on a stale skip
        assert system.invalidations_delivered[1] == 1
        assert mech.stats.coherence_flushes == 1
        assert mech.stats.unsafe_skips == 0
        assert oracle.clean
        assert oracle.skips_checked > 0
        # After the boundary flush, the mechanism relearns NEW_FUNC and
        # resumes skipping — the flush cost is one executed trampoline.
        counters = system.finalize()[1]
        assert counters.trampolines_skipped >= 4

    def test_lost_invalidation_is_the_hazard(self, tiny_program):
        # Teeth check: drop the coherence delivery and the very same
        # streams must produce the stale-target hazard the oracle exists
        # to catch — proving the passing test above is load-bearing.
        oracle = CorrectnessOracle(tiny_program)
        oracle.register_slot(GOT, FUNC)
        oracle.queue_truth(GOT, NEW_FUNC)
        system, mech = self._system(oracle, coherence_filter=lambda core, ev: False)
        stream0, stream1 = self._streams()
        system.run(stream0, stream1)
        assert system.invalidations_dropped[1] == 1
        assert mech.stats.unsafe_skips > 0
        assert not oracle.clean
