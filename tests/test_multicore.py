"""Tests for the dual-core coherence path (paper Section 3.2)."""

from __future__ import annotations

import pytest

from repro.core import TrampolineSkipMechanism
from repro.errors import ConfigError
from repro.isa.events import block, store
from repro.uarch import CPU
from repro.uarch.multicore import DualCoreSystem
from tests.test_cpu import GOT, plt_call


class TestConstruction:
    def test_shared_l2(self):
        system = DualCoreSystem.with_shared_l2()
        assert system.cpus[0].l2 is system.cpus[1].l2
        assert system.cpus[0].l1i is not system.cpus[1].l1i

    def test_bad_slice_rejected(self):
        with pytest.raises(ConfigError):
            DualCoreSystem((CPU(), CPU()), slice_events=0)


class TestCoherence:
    def test_remote_got_store_flushes_sibling_abtb(self):
        mech = TrampolineSkipMechanism()
        server = CPU(mechanism=mech)
        other = CPU()
        system = DualCoreSystem((server, other))
        # Server core learns and skips; the other core rewrites the GOT.
        system.run(plt_call() * 5, [block(0x9000, 50), store(0x9100, GOT)])
        assert mech.stats.coherence_flushes == 1
        assert len(mech.abtb) == 0
        assert mech.stats.unsafe_skips == 0

    def test_unrelated_remote_stores_harmless(self):
        mech = TrampolineSkipMechanism()
        system = DualCoreSystem((CPU(mechanism=mech), CPU()))
        system.run(plt_call() * 5, [store(0x9100, 0x12345 + 8 * i) for i in range(50)])
        assert len(mech.abtb) == 1
        assert system.invalidations_delivered[0] == 50

    def test_recovery_after_remote_flush(self):
        mech = TrampolineSkipMechanism()
        server = CPU(mechanism=mech)
        system = DualCoreSystem((server, CPU()), slice_events=4)
        # 4-event slices: each plt_call is one slice; the remote store
        # lands between calls, then skipping resumes after one relearn.
        remote = [block(0x9000, 2)] * 3 + [store(0x9100, GOT)]
        system.run(plt_call() * 40, remote)
        counters = system.finalize()[0]
        total = counters.trampolines_skipped + counters.trampolines_executed
        assert total == 40
        assert counters.trampolines_skipped >= 36

    def test_both_cores_can_run_mechanisms(self):
        m0, m1 = TrampolineSkipMechanism(), TrampolineSkipMechanism()
        system = DualCoreSystem((CPU(mechanism=m0), CPU(mechanism=m1)))
        system.run(plt_call() * 10, plt_call() * 10)
        c0, c1 = system.finalize()
        assert c0.trampolines_skipped > 0
        assert c1.trampolines_skipped > 0
        # The resolver-free steady traces contain no stores, so neither
        # mechanism flushed the other.
        assert m0.stats.coherence_flushes == 0
        assert m1.stats.coherence_flushes == 0

    def test_shared_l2_sees_both_cores_lines(self):
        system = DualCoreSystem.with_shared_l2()
        system.run([block(0x4000, 8)], [block(0x4000, 8)])
        # Second core's fetch of the same line hits the shared L2.
        c0, c1 = system.finalize()
        assert c0.l2_misses == 1
        assert c1.l2_misses == 0
