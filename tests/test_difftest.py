"""Tests for the differential-correctness harness.

Two halves: the harness certifies the real backend as clean on seeded
workload slices, and — the part that proves the harness itself works — a
deliberately sabotaged machine produces a report that localises the
divergence to a minimal event window with named snapshot fields.
"""

from __future__ import annotations

import pytest

from repro.difftest import (
    DEFAULT_ABTB_SIZES,
    diff_backends,
    difftest_workload,
    run_matrix,
    snapshot_diff,
    workload_events,
)
from repro.errors import ConfigError
from repro.isa.events import block, jmp_direct
from repro.uarch import CPU
from repro.uarch.btb import BTB


class TestSnapshotDiff:
    def test_equal_payloads_empty(self):
        snap = CPU().snapshot()
        assert snapshot_diff(snap, snap) == []

    def test_nested_paths_and_values(self):
        ref = {"a": {"b": [1, 2], "c": 3.0}, "d": "x"}
        fast = {"a": {"b": [1, 5], "c": 3.0}, "d": "y"}
        diffs = snapshot_diff(ref, fast)
        assert ("a.b[1]", 2, 5) in diffs
        assert ("d", "x", "y") in diffs
        assert len(diffs) == 2

    def test_missing_keys_reported(self):
        diffs = snapshot_diff({"a": 1}, {"b": 2})
        assert ("a", 1, "<absent>") in diffs
        assert ("b", "<absent>", 2) in diffs

    def test_length_mismatch(self):
        assert snapshot_diff([1, 2], [1], "xs") == [("xs.len", 2, 1)]

    def test_float_compared_exactly(self):
        assert snapshot_diff({"cycles": 1.0}, {"cycles": 1.0 + 1e-12})


class TestCleanRuns:
    def test_workload_profile_clean(self):
        report = difftest_workload("memcached", abtb_entries=64, requests=4)
        assert report.ok
        assert report.events > 0
        assert report.sync_points >= 1
        assert "identical" in report.render()

    def test_matrix_clean(self):
        reports = run_matrix(
            workloads=["memcached"], abtb_sizes=(16,), requests=3
        )
        assert [r.label for r in reports] == [
            "memcached/base",
            "memcached/abtb=16",
        ]
        assert all(r.ok for r in reports)

    def test_default_matrix_covers_two_abtb_sizes(self):
        assert len(DEFAULT_ABTB_SIZES) == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            workload_events("nosuchthing")

    def test_seed_changes_stream(self):
        a = workload_events("memcached", requests=2, seed=1)
        b = workload_events("memcached", requests=2, seed=2)
        assert len(a) != len(b) or any(
            x.pc != y.pc or x.mem_addr != y.mem_addr for x, y in zip(a, b)
        )


class _DroppingBTB(BTB):
    """A BTB that silently drops exactly one update — the injected bug."""

    def __init__(self, trip: int) -> None:
        super().__init__()
        self._trip = trip

    def update(self, pc: int, target: int) -> None:
        if self.updates == self._trip:
            self.updates += 1  # consume the update without applying it
            return
        super().update(pc, target)


class TestDivergenceDetection:
    def _make_factory(self, trip: int):
        """Factory whose *odd* calls (the reference CPUs of each pass)
        carry the sabotaged BTB, so reference and fast must come apart."""
        calls = {"n": 0}

        def make_cpu() -> CPU:
            calls["n"] += 1
            cpu = CPU()
            if calls["n"] % 2 == 1:  # reference arm of each pass
                sab = _DroppingBTB(trip)
                cpu.components["btb"] = sab
                cpu.btb = sab
            return cpu

        return make_cpu

    def test_divergence_caught_and_shrunk(self):
        # Distinct direct jumps: every one misses the BTB and updates it,
        # so update #trip is dropped at a deterministic stream position.
        trip = 40
        events = []
        for i in range(100):
            events.append(jmp_direct(0x1000 + 32 * i, 0x90_0000 + 32 * i))
            events.append(block(0x90_0000 + 32 * i, 2))
        report = diff_backends(
            events, self._make_factory(trip), batch_events=16, label="sabotage"
        )
        assert not report.ok
        div = report.divergence
        assert div.shrunk
        # Shrunk to (at most) one jump + one block around the dropped update.
        assert div.first_bad - div.last_good <= 2
        assert div.last_good <= 2 * trip <= div.first_bad
        assert any("btb" in path for path, _, _ in div.diffs)
        assert div.window  # the offending events are quoted
        assert "DIVERGED" in report.render()

    def test_divergence_at_stream_end(self):
        # Trip on the very last update: only the end-of-stream comparison
        # can see it, sync points having all passed.
        events = [jmp_direct(0x1000 + 32 * i, 0x90_0000 + 32 * i) for i in range(10)]
        report = diff_backends(
            events, self._make_factory(9), batch_events=4096, label="tail"
        )
        assert not report.ok
        assert report.divergence.first_bad == len(events)
