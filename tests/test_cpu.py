"""Behavioural tests of the CPU model and the trampoline-skip protocol.

These tests drive hand-crafted event sequences through the CPU and assert
the paper's protocol exactly: when trampolines are skipped, what is (not)
charged, how mispredictions stay symmetric with the base system, and how
Bloom-filter flushes degrade gracefully.
"""

from __future__ import annotations

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.isa.events import (
    block,
    call_direct,
    call_indirect,
    cond_branch,
    context_switch,
    jmp_indirect,
    load,
    mark,
    ret,
    store,
)
from repro.uarch import CPU, CPUConfig

SITE = 0x400100
PLT = 0x401020
GOT = 0x601018
FUNC = 0x7F0000_0000


def plt_call(target: int = FUNC):
    """One steady-state library call: call stub, trampoline, body, return."""
    tramp = jmp_indirect(PLT, target, GOT)
    tramp.tag = "plt"
    return [
        call_direct(SITE, PLT),
        tramp,
        block(target, 10),
        ret(target + 60, SITE + 5),
    ]


def enhanced_cpu(**mech_kwargs) -> CPU:
    return CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(**mech_kwargs)))


class TestFetchCharging:
    def test_block_counts_instructions_and_lines(self):
        cpu = CPU()
        cpu.run([block(0x1000, 32, 128)])  # 128 bytes = 2 lines, 1 page
        c = cpu.finalize()
        assert c.instructions == 32
        assert c.l1i_accesses == 2
        assert c.l1i_misses == 2
        assert c.itlb_accesses == 1

    def test_repeated_block_hits(self):
        cpu = CPU()
        cpu.run([block(0x1000, 8), block(0x1000, 8)])
        c = cpu.finalize()
        assert c.l1i_misses == 1

    def test_line_straddling_block(self):
        cpu = CPU()
        cpu.run([block(0x103C, 4, 16)])  # crosses a 64-byte boundary
        assert cpu.finalize().l1i_accesses == 2

    def test_load_store_charge_dside(self):
        cpu = CPU()
        cpu.run([load(0x1000, 0x9000), store(0x1004, 0x9008)])
        c = cpu.finalize()
        assert c.loads == 1 and c.stores == 1
        assert c.l1d_accesses == 2
        assert c.l1d_misses == 1  # same line
        assert c.dtlb_misses == 1  # same page

    def test_cycles_accumulate(self):
        cpu = CPU()
        cpu.run([block(0x1000, 100)])
        assert cpu.finalize().cycles > 0


class TestBranches:
    def test_cond_branch_direction_misprediction(self):
        cpu = CPU()
        # Alternate fast so the 2-bit counters keep mispredicting some.
        events = [cond_branch(0x1000, 0x2000, taken=bool(i % 2)) for i in range(20)]
        cpu.run(events)
        assert cpu.finalize().branch_mispredictions > 0

    def test_well_predicted_loop_branch(self):
        cpu = CPU()
        cpu.run([cond_branch(0x1000, 0x2000, taken=True) for _ in range(50)])
        c = cpu.finalize()
        assert c.branch_mispredictions <= 1

    def test_direct_call_btb_miss_is_not_misprediction(self):
        cpu = CPU()
        cpu.run([call_direct(0x1000, 0x5000), block(0x5000, 4), ret(0x5010, 0x1005)])
        c = cpu.finalize()
        assert c.branch_mispredictions == 0
        assert c.btb_misses == 1

    def test_indirect_call_cold_mispredicts(self):
        cpu = CPU()
        cpu.run([call_indirect(0x1000, 0x5000), block(0x5000, 4), ret(0x5010, 0x1006)])
        assert cpu.finalize().branch_mispredictions == 1

    def test_indirect_call_warm_predicts(self):
        cpu = CPU()
        seq = [call_indirect(0x1000, 0x5000), block(0x5000, 4), ret(0x5010, 0x1006)]
        cpu.run(seq * 3)
        assert cpu.finalize().branch_mispredictions == 1  # only the cold one

    def test_ret_predicted_by_ras(self):
        cpu = CPU()
        cpu.run([call_direct(0x1000, 0x5000), block(0x5000, 4), ret(0x5010, 0x1005)])
        assert cpu.finalize().branch_mispredictions == 0

    def test_ret_mismatch_mispredicts(self):
        cpu = CPU()
        cpu.run([call_direct(0x1000, 0x5000), ret(0x5010, 0xBAD)])
        assert cpu.finalize().branch_mispredictions == 1


class TestTrampolinePairBase:
    def test_base_executes_and_charges_trampoline(self):
        cpu = CPU()
        cpu.run(plt_call() * 3)
        c = cpu.finalize()
        assert c.trampolines_executed == 3
        assert c.trampolines_skipped == 0
        assert c.got_loads == 3

    def test_base_warm_pair_predicts(self):
        cpu = CPU()
        cpu.run(plt_call() * 5)
        c = cpu.finalize()
        # Only the cold trampoline target mispredicts.
        assert c.branch_mispredictions == 1

    def test_trampoline_instruction_counted(self):
        cpu = CPU()
        cpu.run(plt_call())
        # call + jmp + 10-block + ret
        assert cpu.finalize().instructions == 13


class TestTrampolineSkip:
    def test_second_execution_skips(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 2)
        c = cpu.finalize()
        assert c.trampolines_executed == 1
        assert c.trampolines_skipped == 1

    def test_skipped_trampoline_charges_nothing(self):
        base, enh = CPU(), enhanced_cpu()
        base.run(plt_call() * 10)
        enh.run(plt_call() * 10)
        cb, ce = base.finalize(), enh.finalize()
        # 9 skipped trampolines: one instruction and one GOT load each.
        assert cb.instructions - ce.instructions == 9
        assert cb.got_loads - ce.got_loads == 9
        assert ce.trampolines_skipped == 9

    def test_steady_state_misprediction_parity(self):
        base, enh = CPU(), enhanced_cpu()
        base.run(plt_call() * 50)
        enh.run(plt_call() * 50)
        assert base.finalize().branch_mispredictions == enh.finalize().branch_mispredictions

    def test_skip_preserves_architectural_flow(self):
        # The RAS still sees the call, so the return predicts correctly.
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 5)
        assert cpu.ras.mispredictions == 0

    def test_skip_rate_approaches_one(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 200)
        c = cpu.finalize()
        assert c.trampolines_skipped / 200 > 0.99


class TestBloomFlushRecovery:
    def test_got_store_stops_skipping_until_relearn(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 3)  # learn + 2 skips
        cpu.run([store(0x1000, GOT)])  # GOT rewrite: flush
        assert len(cpu.mechanism.abtb) == 0
        cpu.run(plt_call() * 3)
        c = cpu.finalize()
        # Exec 4 re-executes (relearn), 5-6 skip again.
        assert c.trampolines_executed == 2
        assert c.trampolines_skipped == 4

    def test_demotion_after_flush_costs_one_mispredict(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 3)
        before = cpu.finalize().branch_mispredictions
        cpu.run([store(0x1000, GOT)])
        cpu.run(plt_call())  # promoted BTB entry is now wrong-path
        after = cpu.finalize().branch_mispredictions
        assert after - before == 1

    def test_target_change_never_skips_unsafely_with_bloom(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call(FUNC) * 3)
        cpu.run([store(0x1000, GOT)])  # dlclose-style rewrite
        cpu.run(plt_call(0x7F1111_0000) * 3)  # trampoline now goes elsewhere
        assert cpu.mechanism.stats.unsafe_skips == 0

    def test_stale_skip_detected_without_bloom_or_invalidate(self):
        # Section 3.4 contract violation: no bloom, no explicit invalidate.
        cpu = enhanced_cpu(use_bloom=False)
        cpu.run(plt_call(FUNC) * 3)
        cpu.run(plt_call(0x7F1111_0000) * 1)  # target changed silently
        assert cpu.mechanism.stats.unsafe_skips == 1

    def test_unrelated_stores_never_flush(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 2)
        cpu.run([store(0x1000, 0x9000 + 8 * i) for i in range(200)])
        assert len(cpu.mechanism.abtb) == 1


class TestContextSwitch:
    def test_switch_flushes_tlbs_and_abtb(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 3)
        cpu.run([context_switch()])
        assert len(cpu.mechanism.abtb) == 0
        assert cpu.itlb.accesses > 0
        cpu.run([block(FUNC, 4)])
        assert cpu.finalize().itlb_misses >= 2  # refetch walks the page again

    def test_asid_retains_abtb(self):
        cpu = enhanced_cpu(asid_support=True)
        cpu.run(plt_call() * 3)
        cpu.run([context_switch()])
        assert len(cpu.mechanism.abtb) == 1

    def test_switch_counted(self):
        cpu = CPU()
        cpu.run([context_switch(), context_switch()])
        assert cpu.finalize().context_switches == 2

    def test_relearn_after_switch(self):
        cpu = enhanced_cpu()
        cpu.run(plt_call() * 3)
        cpu.run([context_switch()])
        cpu.run(plt_call() * 3)
        c = cpu.finalize()
        # 1 learn + 2 skips, switch, 1 relearn + 2 skips.
        assert c.trampolines_executed == 2
        assert c.trampolines_skipped == 4


class TestMarks:
    def test_marks_record_progress(self):
        cpu = CPU()
        cpu.run([mark("a"), block(0x1000, 10), mark("b")])
        assert [m.tag for m in cpu.marks] == ["a", "b"]
        assert cpu.marks[1].instructions - cpu.marks[0].instructions == 10
        assert cpu.marks[1].cycles > cpu.marks[0].cycles

    def test_marks_have_no_cost(self):
        cpu = CPU()
        cpu.run([mark("a")] * 10)
        c = cpu.finalize()
        assert c.instructions == 0 and c.cycles == 0


class TestResolverSequence:
    """First-call behaviour through the real engine-generated sequence."""

    def _one_first_call(self, cpu: CPU):
        from repro.linker import DynamicLinker
        from repro.trace.engine import ExecutionEngine
        from tests.conftest import tiny_specs

        exe, libs = tiny_specs()
        program = DynamicLinker().link(exe, libs)
        engine = ExecutionEngine(program)
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)
        events += engine.return_events(binding, site)
        cpu.run(events)
        return program, engine, site

    def test_resolver_store_flushes_freshly_learned_entry(self):
        cpu = enhanced_cpu()
        self._one_first_call(cpu)
        # The pair learned plt->push_addr, then the GOT store flushed it.
        assert len(cpu.mechanism.abtb) == 0
        assert cpu.mechanism.stats.store_flushes == 1

    def test_resolver_instructions_charged(self):
        cpu = CPU()
        self._one_first_call(cpu)
        assert cpu.finalize().instructions > 700  # the resolver dominates

    def test_steady_state_reached_after_resolution(self):
        cpu = enhanced_cpu()
        program, engine, site = self._one_first_call(cpu)
        for _ in range(4):
            events, binding = engine.call_events("app", "printf", site)
            events += engine.return_events(binding, site)
            cpu.run(events)
        c = cpu.finalize()
        # Second call relearns, remaining calls skip.
        assert c.trampolines_skipped >= 2
