"""Tests for popularity profiles and the analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import CDF, Histogram, Report, Series, Summary, Table, dominates
from repro.analysis.stats import geomean, improvement_percent, mean, percentile, speedup
from repro.errors import ConfigError, ExperimentError
from repro.workloads.profiles import PopularityProfile, WeightedSampler


class TestPopularityProfile:
    def test_weights_sum_to_one(self):
        profile = PopularityProfile(core_size=5, core_mass=0.8, zipf_s=1.0)
        w = profile.weights(100)
        assert w.sum() == pytest.approx(1.0)

    def test_core_uniform(self):
        profile = PopularityProfile(core_size=4, core_mass=0.8, zipf_s=1.0)
        w = profile.weights(50)
        assert np.allclose(w[:4], 0.2)

    def test_tail_decreasing(self):
        profile = PopularityProfile(core_size=0, core_mass=0.0, zipf_s=1.0)
        w = profile.weights(100)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_core_larger_than_universe(self):
        profile = PopularityProfile(core_size=100, core_mass=0.9, zipf_s=1.0)
        w = profile.weights(10)
        assert np.allclose(w, 0.1)

    def test_steeper_zipf_concentrates(self):
        flat = PopularityProfile(zipf_s=0.5).weights(100)
        steep = PopularityProfile(zipf_s=1.5).weights(100)
        assert steep[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            PopularityProfile(core_size=-1)
        with pytest.raises(ConfigError):
            PopularityProfile(core_size=3, core_mass=0.0)
        with pytest.raises(ConfigError):
            PopularityProfile(core_mass=1.5)
        with pytest.raises(ConfigError):
            PopularityProfile(zipf_s=0)
        with pytest.raises(ConfigError):
            PopularityProfile().weights(0)


class TestWeightedSampler:
    def test_respects_weights(self):
        sampler = WeightedSampler(np.array([0.9, 0.1]))
        rng = np.random.default_rng(1)
        draws = sampler.sample_many(rng, 2000)
        assert 0.85 < np.mean(draws == 0) < 0.95

    def test_single_item(self):
        sampler = WeightedSampler(np.array([1.0]))
        rng = np.random.default_rng(1)
        assert sampler.sample(rng) == 0

    def test_invalid_weights(self):
        with pytest.raises(ConfigError):
            WeightedSampler(np.array([]))
        with pytest.raises(ConfigError):
            WeightedSampler(np.array([0.0, 0.0]))


class TestStats:
    def test_mean_percentile(self):
        data = list(range(1, 101))
        assert mean(data) == 50.5
        assert percentile(data, 50) == pytest.approx(50.5)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean([])
        with pytest.raises(ExperimentError):
            percentile([], 50)

    def test_speedup_and_improvement(self):
        assert speedup(110, 100) == pytest.approx(1.1)
        assert improvement_percent(100, 96) == pytest.approx(4.0)

    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ExperimentError):
            geomean([1, -1])

    def test_summary(self):
        s = Summary.of(range(1, 101))
        assert s.n == 100
        assert s.p50 <= s.p90 <= s.p99


class TestCDF:
    def test_monotone(self):
        cdf = CDF.of([3, 1, 2])
        assert list(cdf.values) == [1, 2, 3]
        assert cdf.fractions[-1] == 1.0

    def test_percentile_lookup(self):
        cdf = CDF.of(range(1, 101))
        assert cdf.percentile(50) == pytest.approx(50, abs=1)
        assert cdf.percentile(95) == pytest.approx(95, abs=1)

    def test_fraction_below(self):
        cdf = CDF.of(range(1, 11))
        assert cdf.fraction_below(5) == 0.5

    def test_dominates(self):
        fast = CDF.of([1, 2, 3, 4])
        slow = CDF.of([2, 3, 4, 5])
        assert dominates(fast, slow)
        assert not dominates(slow, fast)

    def test_sampled_points(self):
        cdf = CDF.of(range(100))
        pts = cdf.sampled(10)
        assert len(pts) == 10
        assert pts[0][0] <= pts[-1][0]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            CDF.of([])


class TestHistogram:
    def test_counts_total(self):
        h = Histogram.of([1, 2, 2, 3], bins=4)
        assert h.total == 4
        assert sum(h.fractions()) == pytest.approx(1.0)

    def test_peak(self):
        h = Histogram.of([1.0] * 10 + [5.0], bins=5, lo=0, hi=5)
        assert h.peak_value() < 2.0

    def test_mode_shift_positive_when_faster(self):
        fast = Histogram.of([1.0] * 10, bins=10, lo=0, hi=10)
        slow = Histogram.of([8.0] * 10, bins=10, lo=0, hi=10)
        assert fast.mode_shift(slow) > 0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            Histogram.of([])


class TestReport:
    def test_table_rendering(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2.5)
        out = t.render()
        assert "T" in out and "2.500" in out

    def test_table_row_mismatch(self):
        t = Table("T", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_table_column(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_report_shape_summary(self):
        r = Report("x", "d", shape_checks={"ok": True, "bad": False})
        assert not r.all_shapes_hold
        rendered = r.render()
        assert "[PASS] ok" in rendered and "[FAIL] bad" in rendered

    def test_series_render(self):
        s = Series("curve", [1.0, 2.0, 3.0], [0.1, 0.2, 0.3])
        assert "curve" in s.render()
