"""Tests for the chaos harness: fault injection + correctness oracle.

The paper's safety claim (§3.2–§3.4) is adversarial by nature — "no GOT
write can lead to a committed stale target" — so these tests attack the
mechanism with every fault in the catalogue and let the oracle audit
every committed skip against linker ground truth.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    CORRUPTION_KINDS,
    AbtbThrashFault,
    BloomSaturationFault,
    CampaignConfig,
    ChaosContext,
    ChaosRunConfig,
    ContextSwitchFault,
    CorrectnessOracle,
    GotRewriteFault,
    IfuncReselectFault,
    Injector,
    LossyCoherence,
    SpuriousInvalFault,
    corrupted_stream,
    default_faults,
    run_campaign,
    run_chaos,
    run_corruption_trials,
)
from repro.cli import main
from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.errors import ChaosError, OracleViolation, TraceError
from repro.isa.events import store
from repro.trace.validate import validated
from repro.uarch import CPU
from repro.uarch.multicore import DualCoreSystem
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload
from tests.test_cpu import FUNC, GOT, plt_call


def _memcached(seed: int = 7) -> Workload:
    return Workload(ALL_WORKLOADS["memcached"].config(seed=seed))


def _instrumented_run(faults, seed=11, requests=12, rate=0.02, use_bloom=True):
    """One single-core memcached run with the given fault mix."""
    workload = _memcached(seed)
    mech = TrampolineSkipMechanism(
        MechanismConfig(abtb_entries=64, bloom_bits=4096, use_bloom=use_bloom)
    )
    oracle = CorrectnessOracle(workload.program)
    cpu = CPU(mechanism=mech, hooks=oracle)
    cpu.run(workload.startup_trace())
    ctx = ChaosContext(workload.program, oracle, mech)
    injector = Injector(faults, ctx, seed=seed, rate=rate)
    cpu.run(injector.wrap(workload.trace(requests)))
    cpu.finalize()
    return injector, oracle, mech


# --------------------------------------------------------------- the oracle


class TestOracle:
    def test_clean_run_audits_every_skip(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program)
        oracle.register_slot(GOT, FUNC)
        cpu = CPU(mechanism=TrampolineSkipMechanism(), hooks=oracle)
        cpu.run(plt_call() * 8)
        assert oracle.skips_checked > 0
        assert oracle.clean
        oracle.assert_clean()

    def test_stale_skip_is_a_violation(self, tiny_program):
        # Bloom off, untagged GOT store: the mechanism keeps its stale
        # mapping and commits it — exactly what the oracle must catch.
        oracle = CorrectnessOracle(tiny_program)
        oracle.register_slot(GOT, FUNC)
        mech = TrampolineSkipMechanism(MechanismConfig(use_bloom=False))
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(plt_call() * 5)  # learn, promote, skip
        new_target = FUNC + 0x100
        oracle.queue_truth(GOT, new_target)
        cpu.run([store(0x9000, GOT)])  # linker rewrote; nobody told the ABTB
        cpu.run(plt_call(new_target))
        assert mech.stats.unsafe_skips == 1
        assert len(oracle.violations) == 1
        assert not oracle.clean
        record = oracle.violations[0]
        assert record.got_addr == GOT
        assert record.committed == FUNC and record.truth == new_target
        with pytest.raises(OracleViolation):
            oracle.assert_clean()

    def test_expect_hazards_counts_instead_of_violating(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program, expect_hazards=True)
        oracle.register_slot(GOT, FUNC)
        mech = TrampolineSkipMechanism(MechanismConfig(use_bloom=False))
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(plt_call() * 5)
        oracle.queue_truth(GOT, FUNC + 0x100)
        cpu.run([store(0x9000, GOT)])
        cpu.run(plt_call(FUNC + 0x100))
        assert oracle.hazards_detected == 1
        assert oracle.violations == []

    def test_raise_on_violation(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program, raise_on_violation=True)
        oracle.register_slot(GOT, FUNC)
        mech = TrampolineSkipMechanism(MechanismConfig(use_bloom=False))
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(plt_call() * 5)
        oracle.queue_truth(GOT, FUNC + 0x100)
        cpu.run([store(0x9000, GOT)])
        with pytest.raises(OracleViolation):
            cpu.run(plt_call(FUNC + 0x100))

    def test_truth_applied_at_store_retirement(self, tiny_program):
        # A queued truth must not take effect before the store retires —
        # that ordering is what keeps the oracle exact under dual-core
        # slice buffering.
        oracle = CorrectnessOracle(tiny_program)
        oracle.register_slot(GOT, FUNC)
        oracle.queue_truth(GOT, FUNC + 0x100)
        assert oracle._lookup(GOT) == FUNC
        oracle.on_store(GOT)
        assert oracle._lookup(GOT) == FUNC + 0x100

    def test_real_program_slots_indexed(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program)
        assert len(oracle.known_slots()) >= 5  # app imports 3, libx 2
        caller, symbol = next(iter(oracle.slot_index().values()))
        assert caller in tiny_program.modules


# ------------------------------------------------------------- the injector


class TestInjector:
    def test_bad_rate_rejected(self, tiny_program):
        ctx = ChaosContext(tiny_program, CorrectnessOracle(tiny_program))
        with pytest.raises(ChaosError):
            Injector([], ctx, rate=1.5)
        with pytest.raises(ChaosError):
            Injector([], ctx, rate=0.1)  # rate without faults

    def test_seeded_runs_are_identical(self):
        cfg = ChaosRunConfig(workload="memcached", seed=13, requests=10, rate=0.02)
        assert run_chaos(cfg) == run_chaos(cfg)

    def test_fixed_schedule_fires_once(self, tiny_program):
        oracle = CorrectnessOracle(tiny_program)
        ctx = ChaosContext(tiny_program, oracle)
        injector = Injector(
            [], ctx, at=[(3, ContextSwitchFault())], rate=0.0
        )
        events = list(injector.wrap(plt_call() * 4))
        assert injector.injected == 1
        assert injector.fault_counts == {"context-switch": 1}
        # The stream gained exactly the one context switch.
        assert len(events) == 16 + 1

    def test_injection_never_splits_trampoline_pairs(self):
        # High injection rate over a real trace: every call→stub pair must
        # stay adjacent or the CPU's pairing logic desyncs (which would
        # show up as lost trampoline executions).
        baseline_workload = _memcached(3)
        baseline_cpu = CPU()
        baseline_cpu.run(baseline_workload.startup_trace())
        baseline_cpu.run(baseline_workload.trace(8))
        baseline = baseline_cpu.finalize().trampolines_executed

        workload = _memcached(3)
        oracle = CorrectnessOracle(workload.program)
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(workload.startup_trace())
        ctx = ChaosContext(workload.program, oracle, mech)
        injector = Injector(
            [ContextSwitchFault(), SpuriousInvalFault()], ctx, seed=1, rate=0.05
        )
        cpu.run(injector.wrap(workload.trace(8)))
        c = cpu.finalize()
        assert injector.injected > 0
        assert c.trampolines_skipped + c.trampolines_executed == baseline


# ------------------------------------------------------ individual faults


class TestFaults:
    @pytest.mark.parametrize(
        "fault",
        [
            GotRewriteFault(),
            IfuncReselectFault(),
            ContextSwitchFault(),
            SpuriousInvalFault(),
            BloomSaturationFault(),
            AbtbThrashFault(),
        ],
        ids=lambda f: f.name,
    )
    def test_fault_fires_and_mechanism_stays_safe(self, fault):
        injector, oracle, mech = _instrumented_run([fault], rate=0.03)
        assert injector.injected > 0, f"{fault.name} never fired"
        assert oracle.skips_checked > 0
        assert oracle.clean
        assert mech.stats.unsafe_skips == 0

    def test_got_rewrite_changes_linker_truth(self):
        workload = _memcached(5)
        oracle = CorrectnessOracle(workload.program)
        ctx = ChaosContext(workload.program, oracle)
        CPU().run(workload.startup_trace())
        import numpy as np

        rng = np.random.default_rng(0)
        before = {
            (caller, symbol): value
            for caller, symbol, _got, value in ctx.resolved_slots()
        }
        events = GotRewriteFault().fire(ctx, rng)
        assert events, "no resolved slot to rewrite"
        assert events[-1].tag == "got-store"
        got_addr = events[-1].mem_addr
        caller, symbol = oracle.slot_index()[got_addr]
        assert workload.program.got_value(caller, symbol) != before[(caller, symbol)]

    def test_untagged_rewrite_store_when_contract_broken(self):
        workload = _memcached(5)
        oracle = CorrectnessOracle(workload.program)
        ctx = ChaosContext(workload.program, oracle)
        CPU().run(workload.startup_trace())
        import numpy as np

        events = GotRewriteFault(software_invalidate=False).fire(
            ctx, np.random.default_rng(0)
        )
        assert events and events[-1].tag is None

    def test_bloom_saturation_causes_false_positive_flushes(self):
        # A tiny filter + the saturation fault: stores to addresses nobody
        # mapped must flush through false positives (performance loss,
        # never safety loss).
        workload = _memcached(9)
        mech = TrampolineSkipMechanism(
            MechanismConfig(abtb_entries=64, bloom_bits=64)
        )
        oracle = CorrectnessOracle(workload.program)
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(workload.startup_trace())
        ctx = ChaosContext(workload.program, oracle, mech)
        injector = Injector([BloomSaturationFault()], ctx, seed=2, rate=0.01)
        cpu.run(injector.wrap(workload.trace(10)))
        assert injector.injected > 0
        assert mech.stats.store_flushes > 0
        assert oracle.clean and mech.stats.unsafe_skips == 0

    def test_abtb_thrash_evicts_but_stays_safe(self):
        workload = _memcached(10)
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
        oracle = CorrectnessOracle(workload.program)
        cpu = CPU(mechanism=mech, hooks=oracle)
        cpu.run(workload.startup_trace())
        ctx = ChaosContext(workload.program, oracle, mech)
        injector = Injector([AbtbThrashFault()], ctx, seed=3, rate=0.01)
        cpu.run(injector.wrap(workload.trace(10)))
        assert injector.injected > 0
        assert mech.abtb.evictions > 0
        assert oracle.clean and mech.stats.unsafe_skips == 0


# --------------------------------------------------------- trace corruption


class TestCorruption:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_corruption_raises_trace_error(self, kind):
        cpu = CPU()
        with pytest.raises(TraceError):
            cpu.run(validated(iter(corrupted_stream(kind))))

    def test_all_trials_detected(self):
        assert all(run_corruption_trials().values())

    def test_benign_stream_passes_validation(self):
        workload = _memcached(4)
        events = list(validated(workload.trace(3)))
        assert events


# ---------------------------------------------------------------- dual core


class TestDualCore:
    def test_core0_rewrite_core1_never_skips_stale(self):
        # Satellite: core 0's stream rewrites GOT slots mid-window; the
        # shared oracle audits every skip on both cores and core 1's
        # mechanism must never commit a stale target.
        workload = _memcached(21)
        mk = lambda: TrampolineSkipMechanism(  # noqa: E731
            MechanismConfig(abtb_entries=64, bloom_bits=4096)
        )
        mech0, mech1 = mk(), mk()
        oracle = CorrectnessOracle(workload.program)
        cpu0 = CPU(mechanism=mech0, hooks=oracle)
        cpu1 = CPU(mechanism=mech1, hooks=oracle)
        system = DualCoreSystem((cpu0, cpu1), slice_events=64)
        cpu0.run(workload.startup_trace())
        ctx0 = ChaosContext(workload.program, oracle, mech0)
        injector = Injector([GotRewriteFault()], ctx0, seed=5, rate=0.02)
        system.run(
            injector.wrap(workload.trace(12, start_id=0)),
            validated(workload.trace(12, start_id=5000)),
        )
        system.finalize()
        assert injector.injected > 0
        assert oracle.skips_checked > 0
        assert oracle.clean
        assert mech0.stats.unsafe_skips == 0
        assert mech1.stats.unsafe_skips == 0
        # The rewrites were observed remotely (snoop or conservative flush).
        assert system.invalidations_delivered[1] > 0

    def test_unsafe_coherence_loss_is_detected_by_oracle(self):
        # Broken hardware: cross-core invalidations silently dropped.
        # Core 1 keeps stale ABTB entries, commits stale targets — and
        # the oracle must catch it.
        workload = _memcached(22)
        mk = lambda: TrampolineSkipMechanism(  # noqa: E731
            MechanismConfig(abtb_entries=64, bloom_bits=4096)
        )
        mech0, mech1 = mk(), mk()
        oracle = CorrectnessOracle(workload.program)
        cpu0 = CPU(mechanism=mech0, hooks=oracle)
        cpu1 = CPU(mechanism=mech1, hooks=oracle)
        lossy = LossyCoherence(oracle, drop_prob=1.0, unsafe=True, seed=1)
        system = DualCoreSystem((cpu0, cpu1), slice_events=64, coherence_filter=lossy)
        cpu0.run(workload.startup_trace())
        ctx0 = ChaosContext(workload.program, oracle, mech0)
        injector = Injector([GotRewriteFault()], ctx0, seed=6, rate=0.03)
        system.run(
            injector.wrap(workload.trace(16, start_id=0)),
            validated(workload.trace(16, start_id=5000)),
        )
        system.finalize()
        assert injector.injected > 0
        assert lossy.dropped > 0
        assert len(oracle.violations) > 0
        assert mech1.stats.unsafe_skips > 0

    def test_safe_coherence_loss_preserves_correctness(self):
        # Default LossyCoherence only drops provably harmless
        # invalidations; the bloom-on invariant must survive.
        result = run_chaos(
            ChaosRunConfig(
                workload="memcached", seed=23, requests=12, rate=0.02,
                dual_core=True, drop_prob=1.0,
            )
        )
        assert result.invalidations_dropped > 0
        assert result.violations == 0 and result.unsafe_skips == 0


# ---------------------------------------------------------------- campaigns


class TestCampaign:
    def test_acceptance_campaign_bloom_on(self):
        # The ISSUE's acceptance bar: >= 5 fault types, >= 1000 injected
        # faults across single- and dual-core runs, zero unsafe skips and
        # zero oracle violations, all corruption trials detected.
        report = run_campaign(CampaignConfig(seed=2025, min_faults=1000))
        assert report.injected >= 1000
        assert len(report.fault_counts) >= 5
        assert any("dual" in r.label for r in report.runs)
        assert any("single" in r.label for r in report.runs)
        assert report.unsafe_skips == 0
        assert report.violations == 0
        assert report.corruption_detected
        assert report.ok
        assert "verdict         : OK" in report.render()

    def test_campaign_bloom_off_detects_34_hazard(self):
        # Same campaign shape, bloom disabled and the software contract
        # broken: the §3.4 hazard must fire and be detected.
        report = run_campaign(
            CampaignConfig(
                seed=2025, min_faults=200, use_bloom=False, software_invalidate=False
            )
        )
        assert report.expect_hazards
        assert report.hazards_detected > 0
        assert report.unsafe_skips > 0
        assert report.ok

    def test_bloom_off_with_contract_honoured_stays_clean(self):
        # §3.4 done right: tagged got-stores invalidate the ABTB in
        # software, so even without the Bloom filter nothing goes stale.
        result = run_chaos(
            ChaosRunConfig(
                workload="memcached", seed=31, requests=16, rate=0.02,
                use_bloom=False, software_invalidate=True,
            )
        )
        assert result.injected > 0
        assert result.violations == 0
        assert result.hazards_detected == 0
        assert result.unsafe_skips == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ChaosError):
            run_chaos(ChaosRunConfig(workload="postgres"))

    def test_cli_chaos_smoke(self, capsys):
        rc = main(
            ["chaos", "--min-faults", "30", "--requests", "8", "--seed", "1",
             "--workloads", "memcached"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict" in out and "OK" in out
