"""Tests for the ARM trampoline encoding (paper Figure 2b).

The mechanism is encoding-agnostic: a call followed by an indirect
branch within the stub.  On ARM the stub spends two address-computation
instructions before the branch, so skipping saves three instructions per
call instead of one.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import TrampolineSkipMechanism
from repro.isa.arch import ARCH_PARAMS, Arch
from repro.isa.kinds import EventKind
from repro.linker import DynamicLinker
from repro.trace.engine import ExecutionEngine
from repro.uarch import CPU
from repro.workloads import memcached
from repro.workloads.base import Workload
from tests.conftest import tiny_specs


def _engine(arch: Arch):
    exe, libs = tiny_specs()
    program = DynamicLinker().link(exe, libs)
    return program, ExecutionEngine(program, arch=arch)


class TestArchParams:
    def test_x86_trampoline_is_one_instruction(self):
        assert ARCH_PARAMS[Arch.X86_64].trampoline_instructions == 1

    def test_arm_trampoline_is_three_instructions(self):
        assert ARCH_PARAMS[Arch.ARM].trampoline_instructions == 3


class TestArmEngine:
    def test_steady_call_emits_stub_prefix(self):
        program, engine = _engine(Arch.ARM)
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)  # resolve
        events, binding = engine.call_events("app", "printf", site)
        kinds = [e.kind for e in events]
        assert kinds == [EventKind.CALL_DIRECT, EventKind.BLOCK, EventKind.JMP_INDIRECT]
        call, stub, jmp = events
        assert stub.pc == binding.plt_addr and stub.n_instr == 2
        assert jmp.pc == stub.pc + stub.nbytes
        assert jmp.mem_addr == binding.got_addr

    def test_x86_has_no_prefix(self):
        program, engine = _engine(Arch.X86_64)
        site = program.module("app").function("main").entry + 32
        engine.call_events("app", "printf", site)
        events, _ = engine.call_events("app", "printf", site)
        assert [e.kind for e in events] == [EventKind.CALL_DIRECT, EventKind.JMP_INDIRECT]


class TestArmSkip:
    def _steady_calls(self, n: int):
        program, engine = _engine(Arch.ARM)
        site = program.module("app").function("main").entry + 32
        events, binding = engine.call_events("app", "printf", site)  # resolver
        out = list(events) + engine.return_events(binding, site)
        for _ in range(n):
            events, binding = engine.call_events("app", "printf", site)
            out += list(events) + engine.return_events(binding, site)
        return out

    def test_arm_triple_learned_and_skipped(self):
        cpu = CPU(mechanism=TrampolineSkipMechanism())
        cpu.run(self._steady_calls(6))
        c = cpu.finalize()
        assert c.trampolines_skipped >= 3

    def test_arm_skip_saves_three_instructions(self):
        base, enh = CPU(), CPU(mechanism=TrampolineSkipMechanism())
        events = self._steady_calls(10)
        base.run(iter(events))
        enh.run(iter(events))
        cb, ce = base.finalize(), enh.finalize()
        assert cb.instructions - ce.instructions == 3 * ce.trampolines_skipped

    def test_arm_trampoline_instruction_accounting(self):
        cpu = CPU()
        cpu.run(self._steady_calls(5))
        c = cpu.finalize()
        # Every executed trampoline counts 3 instructions on ARM.
        assert c.trampoline_instructions == 3 * c.trampolines_executed

    def test_arm_misprediction_parity(self):
        events = self._steady_calls(30)
        base, enh = CPU(), CPU(mechanism=TrampolineSkipMechanism())
        base.run(iter(events))
        enh.run(iter(events))
        # One extra startup misprediction from promote-at-learn during the
        # resolver sequence is allowed; steady state is at parity.
        assert (
            enh.finalize().branch_mispredictions
            <= base.finalize().branch_mispredictions + 1
        )


class TestArmWorkload:
    @pytest.fixture(scope="class")
    def pair(self):
        results = []
        for mech in (None, TrampolineSkipMechanism()):
            wl = Workload(replace(memcached.config(), arch=Arch.ARM))
            cpu = CPU(mechanism=mech)
            cpu.run(wl.startup_trace())
            cpu.finalize()
            snap = cpu.counters.copy()
            cpu.run(wl.trace(60, include_marks=False))
            cpu.finalize()
            results.append(cpu.counters.delta(snap))
        return results

    def test_arm_pki_is_triple_x86(self, pair):
        base, _ = pair
        assert base.pki("trampoline_instructions") == pytest.approx(
            3 * base.pki("trampolines_executed"), rel=0.01
        )

    def test_arm_savings_exactly_three_per_skip(self, pair):
        base, enh = pair
        assert base.instructions - enh.instructions == 3 * enh.trampolines_skipped

    def test_arm_skip_rate_matches_x86(self, pair):
        _, enh = pair
        total = enh.trampolines_skipped + enh.trampolines_executed
        assert enh.trampolines_skipped / total > 0.9
