"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import CDF
from repro.core import ABTB, BloomFilter
from repro.memory.pages import PAGE_SIZE, pages_spanned
from repro.uarch.btb import BTB
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.predictor import ReturnAddressStack
from repro.workloads.profiles import PopularityProfile, WeightedSampler

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestBloomProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_ever(self, keys):
        bloom = BloomFilter(4096, 3)
        for k in keys:
            bloom.add(k)
        assert all(bloom.maybe_contains(k) for k in keys)

    @given(st.lists(addresses, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_clear_restores_empty(self, keys):
        bloom = BloomFilter(1024, 2)
        for k in keys:
            bloom.add(k)
        bloom.clear()
        assert bloom.set_bits == 0


class TestABTBProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.tuples(addresses, addresses, addresses), min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, entries, inserts):
        abtb = ABTB(entries)
        for tramp, func, got in inserts:
            abtb.insert(tramp, func, got)
            assert len(abtb) <= entries

    @given(st.lists(st.tuples(addresses, addresses, addresses), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_last_insert_always_resident(self, inserts):
        abtb = ABTB(8)
        for tramp, func, got in inserts:
            abtb.insert(tramp, func, got)
            assert abtb.lookup(tramp) == func

    @given(st.lists(st.tuples(addresses, addresses, addresses), min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_got_addresses_cover_residents(self, inserts):
        abtb = ABTB(16)
        for tramp, func, got in inserts:
            abtb.insert(tramp, func, got)
        gots = abtb.got_addresses()
        for tramp, func, got in inserts:
            if tramp in abtb:
                assert got in gots or any(
                    t == tramp for t, _, _ in inserts[::-1]
                )  # stale duplicates may have rewritten the slot


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        cache = SetAssociativeCache("c", 4096, 64, 4)
        for a in addrs:
            cache.access(a)
            assert cache.access(a)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_misses_bounded_by_accesses(self, addrs):
        cache = SetAssociativeCache("c", 1024, 64, 2)
        for a in addrs:
            cache.access(a)
        assert 0 < cache.accesses == len(addrs)
        assert 0 <= cache.misses <= cache.accesses

    @given(st.integers(min_value=0, max_value=1 << 30), st.integers(min_value=1, max_value=10000))
    @settings(max_examples=50, deadline=None)
    def test_pages_spanned_consistent(self, addr, nbytes):
        pages = list(pages_spanned(addr, nbytes))
        assert pages[0] == addr // PAGE_SIZE
        assert pages[-1] == (addr + nbytes - 1) // PAGE_SIZE
        assert pages == sorted(set(pages))


class TestBTBProperties:
    @given(st.lists(st.tuples(addresses, addresses), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_update_then_lookup(self, pairs):
        btb = BTB(64, 4)
        for pc, target in pairs:
            btb.update(pc, target)
            assert btb.peek(pc) == target


class TestRASProperties:
    @given(st.lists(addresses, min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_balanced_within_depth_never_mispredicts(self, rets):
        ras = ReturnAddressStack(16)
        for r in rets:
            ras.push(r)
        for r in reversed(rets):
            assert not ras.pop_and_check(r)


class TestSamplerProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_samples_in_range(self, universe, core, zipf_s):
        mass = 0.5 if core else 0.0
        profile = PopularityProfile(core_size=core, core_mass=mass, zipf_s=zipf_s)
        sampler = WeightedSampler(profile.weights(universe))
        rng = np.random.default_rng(0)
        draws = sampler.sample_many(rng, 200)
        assert draws.min() >= 0 and draws.max() < universe


class TestCDFProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_cdf_monotone_and_normalised(self, samples):
        cdf = CDF.of(samples)
        assert list(cdf.values) == sorted(cdf.values)
        assert all(0 < f <= 1 for f in cdf.fractions)
        assert cdf.fractions[-1] == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_percentiles_monotone(self, samples):
        cdf = CDF.of(samples)
        assert cdf.percentile(25) <= cdf.percentile(50) <= cdf.percentile(95)
