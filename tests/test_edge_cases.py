"""Edge-case and corner coverage across modules."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.core import TrampolineSkipMechanism
from repro.isa.events import block, call_direct, jmp_indirect, load, mark, ret
from repro.isa.kinds import EventKind
from repro.uarch import CPU, CPUConfig, PerfCounters
from repro.uarch.timing import TimingModel
from repro.workloads import memcached
from repro.workloads.base import Workload
from tests.test_integration import tiny_workload_config


class TestCpuEventBuffering:
    """The pair-detection lookahead must never drop or duplicate events."""

    def test_call_followed_by_block_elsewhere(self):
        # A direct call whose next event is NOT at its target: both charged.
        cpu = CPU()
        cpu.run([call_direct(0x1000, 0x5000), block(0x9000, 7)])
        assert cpu.finalize().instructions == 8

    def test_call_followed_by_small_block_at_target_then_non_jmp(self):
        # Looks like an ARM stub prefix but no indirect branch follows:
        # the two buffered events must still be processed.
        cpu = CPU(mechanism=TrampolineSkipMechanism())
        cpu.run([
            call_direct(0x1000, 0x5000),
            block(0x5000, 2, 8),
            block(0x6000, 5),
        ])
        assert cpu.finalize().instructions == 8

    def test_two_adjacent_calls(self):
        cpu = CPU()
        cpu.run([
            call_direct(0x1000, 0x5000),
            call_direct(0x5000, 0x6000),
            block(0x6000, 3),
        ])
        assert cpu.finalize().instructions == 5

    def test_trailing_call_at_stream_end(self):
        cpu = CPU()
        cpu.run([call_direct(0x1000, 0x5000)])
        assert cpu.finalize().instructions == 1

    def test_large_block_at_call_target_not_treated_as_stub(self):
        # A 32-byte block at the target is a function body, not a stub.
        cpu = CPU(mechanism=TrampolineSkipMechanism())
        cpu.run([
            call_direct(0x1000, 0x5000),
            block(0x5000, 8, 32),
            jmp_indirect(0x5020, 0x9000, 0x700000),
        ])
        c = cpu.finalize()
        assert c.trampolines_skipped == 0
        assert c.instructions == 10


class TestCpuConfig:
    def test_custom_geometry(self):
        cpu = CPU(CPUConfig(l1i_bytes=8192, l1i_ways=4, btb_entries=64))
        assert cpu.l1i.n_sets == 32
        assert cpu.btb.n_sets == 16

    def test_custom_timing_affects_cycles(self):
        slow = CPU(CPUConfig(timing=TimingModel(base_cpi=2.0)))
        fast = CPU(CPUConfig(timing=TimingModel(base_cpi=0.2)))
        events = [block(0x1000, 100)]
        slow.run(iter(events))
        fast.run(iter(events))
        assert slow.finalize().cycles > fast.finalize().cycles

    def test_finalize_syncs_mechanism_counters(self):
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        from tests.test_cpu import GOT, plt_call
        from repro.isa.events import store as store_ev

        cpu.run(plt_call() * 2)
        cpu.run([store_ev(0x1, GOT)])
        c = cpu.finalize()
        assert c.bloom_store_hits == 1


class TestMarkPairing:
    def test_unmatched_end_mark_counted(self):
        from repro.experiments.runner import _pair_marks

        cpu = CPU()
        cpu.run([mark(("end", "X", 5)), mark(("begin", "Y", 6)), block(0x1000, 4), mark(("end", "Y", 6))])
        samples, unmatched, dropped = _pair_marks(cpu, 0)
        assert len(samples) == 1 and samples[0].class_name == "Y"
        assert unmatched == 1 and dropped == 0

    def test_non_request_marks_skipped(self):
        from repro.experiments.runner import _pair_marks

        cpu = CPU()
        cpu.run([mark("freeform"), mark(("begin", "Z", 1)), mark(("end", "Z", 1))])
        samples, unmatched, _ = _pair_marks(cpu, 0)
        assert len(samples) == 1 and unmatched == 0


class TestPreforkTrace:
    def test_switches_between_workers(self):
        wl = Workload(tiny_workload_config())
        events = list(wl.prefork_trace(3, 2))
        switches = sum(1 for e in events if e.kind == EventKind.CONTEXT_SWITCH)
        assert switches == 6  # one per request turn

    def test_distinct_request_ids(self):
        wl = Workload(tiny_workload_config())
        tags = [e.tag for e in wl.prefork_trace(2, 2, include_marks=True) if e.kind == EventKind.MARK]
        ids = {t[2] for t in tags}
        assert ids == {0, 1, 2, 3}

    def test_validation(self):
        wl = Workload(tiny_workload_config())
        with pytest.raises(ConfigError):
            list(wl.prefork_trace(0, 2))


class TestIfuncInWorkloads:
    def test_ifunc_functions_resolve_in_memcached(self):
        # memcached's libc has 5% ifuncs; startup resolves them all.
        wl = Workload(memcached.config())
        for _ in wl.startup_trace():
            pass
        program = wl.program
        from repro.linker.symbols import SymbolKind

        ifuncs = [
            s for s in program.symbols.names()
            if program.symbols.lookup(s).kind is SymbolKind.IFUNC
        ]
        assert ifuncs, "config should define some ifuncs"
        # Any resolved ifunc import points at a variant, not the resolver.
        for caller, symbol in program.resolution_log:
            definition = program.symbols.lookup(symbol)
            if definition is not None and definition.kind is SymbolKind.IFUNC:
                layout = program.modules[definition.module].function(symbol)
                got = program.got_value(caller, symbol)
                assert got in layout.variant_entries


class TestWorkloadConfigVariants:
    def test_plt_sparsity_one_means_no_padding(self):
        wl = Workload(tiny_workload_config(plt_sparsity=1))
        assert len(wl.program.module("app").imports()) == 15

    def test_sites_per_pair_rotation(self):
        wl = Workload(tiny_workload_config(sites_per_pair=3))
        pair = wl._pairs_by_module["app"][0]
        assert len(set(pair.sites)) == 3

    def test_zero_nested_depth(self):
        cfg = tiny_workload_config(max_call_depth=0)
        wl = Workload(cfg)
        for _ in wl.trace(3):
            pass
        # Only app-level pairs can be touched.
        assert all(caller == "app" for caller, _ in wl.touched_pairs)

    def test_arch_replace_roundtrip(self):
        from repro.isa.arch import Arch

        cfg = replace(memcached.config(), arch=Arch.ARM)
        wl = Workload(cfg)
        assert wl.engine.arch is Arch.ARM


class TestCounterExtras:
    def test_as_dict_round_trip(self):
        c = PerfCounters(instructions=5, l2_misses=2)
        d = c.as_dict()
        assert d["instructions"] == 5 and d["l2_misses"] == 2
        assert set(d) == set(PerfCounters.field_names())

    def test_cpi_property(self):
        c = PerfCounters(instructions=100)
        c.cycles = 250.0
        assert c.cpi == 2.5

    def test_l2_counters_populate(self):
        cpu = CPU(CPUConfig(l1d_bytes=1024, l1d_ways=2, l2_bytes=65536, l2_ways=4))
        cpu.run([load(0x1000, 0x9000 + 64 * i) for i in range(64)])
        c = cpu.finalize()
        assert c.l2_accesses > 0
        assert c.l2_misses <= c.l2_accesses

    def test_l2_catches_l1_conflict_victims(self):
        cpu = CPU(CPUConfig(l1d_bytes=1024, l1d_ways=2))
        # Thrash L1 with 3 lines mapping to one set; L2 keeps them.
        addrs = [0x0, 0x400, 0x800] * 30
        cpu.run([load(0x1000, a) for a in addrs])
        c = cpu.finalize()
        assert c.l1d_misses > 3
        # Only cold misses reach DRAM: 3 data lines + 1 code line.
        assert c.l2_misses == 4


class TestSeedRobustness:
    """Key invariants must hold across seeds, not just the default."""

    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_enhanced_never_slower_across_seeds(self, seed):
        results = []
        for mech in (None, TrampolineSkipMechanism()):
            wl = Workload(tiny_workload_config(seed=seed))
            cpu = CPU(mechanism=mech)
            cpu.run(wl.startup_trace())
            cpu.finalize()
            snap = cpu.counters.copy()
            cpu.run(wl.trace(25, include_marks=False))
            cpu.finalize()
            results.append(cpu.counters.delta(snap))
        base, enh = results
        assert enh.cycles <= base.cycles
        assert enh.instructions < base.instructions

    @pytest.mark.parametrize("seed", [3, 17])
    def test_zero_unsafe_skips_across_seeds(self, seed):
        wl = Workload(tiny_workload_config(seed=seed, context_switch_interval=30_000))
        mech = TrampolineSkipMechanism()
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        cpu.run(wl.trace(25, include_marks=False))
        assert mech.stats.unsafe_skips == 0
