"""Snapshot/restore, machine checkpointing, and the sharded campaign.

The central property here is the one checkpointing rests on:

    run(full trace)  ==  restore(snapshot(run(first half))); run(rest)

counter for counter, on every workload profile — plus the supporting
contracts: per-component JSON round-trips, MachineState persistence,
warm-up reuse producing identical measurement windows, and a sharded
campaign being byte-identical to a serial one.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.core import TrampolineSkipMechanism
from repro.core.config import MechanismConfig
from repro.errors import ChaosError, ConfigError, TraceError
from repro.experiments.runner import run_campaign, run_workload
from repro.experiments.scale import Scale
from repro.isa.kinds import EventKind
from repro.trace.engine import LinkMode, TraceCursor
from repro.uarch import CPU, CPUConfig, CheckpointStore, MachineState
from repro.uarch.component import default_registry, verify_component_roundtrip
from repro.uarch.cpu import ChainedHooks, CPUHooks
from repro.workloads import ALL_WORKLOADS, Workload

#: A fast scale for the sharded-campaign identity tests.
TINY = Scale(
    "tiny",
    {"apache": (2, 4), "memcached": (3, 6), "mysql": (2, 4), "firefox": (2, 4)},
)


def _marks(cpu: CPU) -> list[tuple]:
    return [(m.tag, m.instructions, m.cycles) for m in cpu.marks]


# ------------------------------------------------------------ the property


@pytest.mark.parametrize("workload_name", sorted(ALL_WORKLOADS))
@pytest.mark.parametrize("enhanced", [False, True], ids=["base", "enhanced"])
def test_split_run_equals_full_run(workload_name: str, enhanced: bool) -> None:
    """run(trace) == restore(snapshot(run(half))) + run(rest), per profile."""
    cfg = ALL_WORKLOADS[workload_name].config()

    def build_cpu() -> CPU:
        mech = (
            TrampolineSkipMechanism(MechanismConfig(abtb_entries=64))
            if enhanced
            else None
        )
        return CPU(mechanism=mech)

    events = list(Workload(cfg, LinkMode.DYNAMIC).trace(6))
    # Split at a begin-MARK boundary: mid-pair splits would desync the
    # CALL_DIRECT lookahead, which is exactly what real checkpoints avoid
    # by cutting between requests.
    begins = [
        i
        for i, ev in enumerate(events)
        if ev.kind is EventKind.MARK
        and isinstance(ev.tag, tuple)
        and ev.tag[0] == "begin"
    ]
    split = begins[len(begins) // 2]
    assert 0 < split < len(events)

    reference = build_cpu()
    reference.run(iter(events))
    expected = reference.finalize().as_dict()

    first = build_cpu()
    first.run(iter(events[:split]))
    state = first.snapshot()
    state = json.loads(json.dumps(state))  # must survive serialisation

    resumed = build_cpu()
    resumed.restore(state)
    resumed.run(iter(events[split:]))
    got = resumed.finalize().as_dict()

    assert got == expected
    assert _marks(resumed) == _marks(reference)


def test_warmup_cache_hit_is_counter_identical(tmp_path) -> None:
    """A run restored from the warm-up cache measures identical windows."""
    cfg = ALL_WORKLOADS["firefox"].config()
    cold = run_workload(cfg, warmup_requests=3, measured_requests=5)
    store = CheckpointStore(tmp_path)
    filled = run_workload(
        cfg, warmup_requests=3, measured_requests=5, machine_cache=store
    )
    assert store.writes == 1
    cached = run_workload(
        cfg, warmup_requests=3, measured_requests=5, machine_cache=store
    )
    assert store.hits == 1
    for other in (filled, cached):
        assert other.counters.as_dict() == cold.counters.as_dict()
        assert [(r.request_id, r.instructions, r.cycles) for r in other.requests] == [
            (r.request_id, r.instructions, r.cycles) for r in cold.requests
        ]


# ------------------------------------------------------------- components


def test_every_registry_component_round_trips() -> None:
    config = CPUConfig()
    registry = default_registry()
    warmed = registry.build(config)
    cpu = CPU(config)
    cpu.run(Workload(ALL_WORKLOADS["firefox"].config()).trace(2))
    for name in registry.names():
        fresh = registry.factory(name)(config)
        verify_component_roundtrip(cpu.components[name], fresh)
        # And a never-used component round-trips too (empty state).
        verify_component_roundtrip(
            warmed[name], registry.factory(name)(config)
        )


def test_mechanism_round_trips_through_json() -> None:
    mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
    mech.learn(0x400000, 0x401000, 0x7F0000, 0x600000)
    mech.snoop_store(0x600000)
    mech.learn(0x400005, 0x401010, 0x7F0040, 0x600008)
    state = json.loads(json.dumps(mech.snapshot()))
    clone = TrampolineSkipMechanism(MechanismConfig(abtb_entries=16))
    clone.restore(state)
    assert clone.snapshot() == json.loads(json.dumps(state))
    assert clone.mapped_target(0x401010) == 0x7F0040
    with pytest.raises(ConfigError):
        TrampolineSkipMechanism(MechanismConfig(abtb_entries=32)).restore(state)


def test_cpu_restore_rejects_mismatches() -> None:
    cpu = CPU()
    state = cpu.snapshot()
    with pytest.raises(ConfigError):
        CPU(CPUConfig(btb_entries=1024)).restore(state)
    with pytest.raises(ConfigError):
        CPU(mechanism=TrampolineSkipMechanism()).restore(state)
    enhanced_state = CPU(mechanism=TrampolineSkipMechanism()).snapshot()
    with pytest.raises(ConfigError):
        CPU().restore(enhanced_state)
    bad_version = dict(state, version=999)
    with pytest.raises(ConfigError):
        CPU().restore(bad_version)


def test_cpu_reset_matches_fresh_machine() -> None:
    cpu = CPU(mechanism=TrampolineSkipMechanism())
    cpu.run(Workload(ALL_WORKLOADS["firefox"].config()).trace(2))
    cpu.finalize()
    cpu.reset()
    fresh = CPU(mechanism=TrampolineSkipMechanism())
    assert cpu.snapshot() == fresh.snapshot()


# ------------------------------------------------------------ MachineState


def test_machine_state_save_load_verify(tmp_path) -> None:
    cfg = ALL_WORKLOADS["memcached"].config()
    workload = Workload(cfg)
    cpu = CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=32)))
    cursor = TraceCursor(workload.startup_trace())
    cpu.run(cursor)
    cpu.finalize()
    state = MachineState.capture(cpu, trace_position=cursor.index, meta={"w": "memcached"})
    path = state.save(tmp_path / "m.json")
    loaded = MachineState.load(path)
    loaded.validate_roundtrip()
    assert loaded.trace_position == cursor.index
    rebuilt = loaded.build_cpu()
    assert rebuilt.counters.as_dict() == cpu.counters.as_dict()
    assert rebuilt.mechanism is not None
    assert rebuilt.mechanism.config.abtb_entries == 32

    with pytest.raises(ConfigError):
        loaded.restore_into(CPU())  # no mechanism → config mismatch


def test_checkpoint_store_miss_hit_and_corruption(tmp_path) -> None:
    store = CheckpointStore(tmp_path)
    assert store.load("nope") is None
    state = MachineState.capture(CPU())
    store.save("k", state)
    assert store.load("k") is not None
    assert store.keys() == ["k"]
    store.path("bad").write_text("{not json")
    assert store.load("bad") is None
    assert (store.hits, store.misses) == (1, 2)


# -------------------------------------------------------------- satellites


def test_chained_hooks_mirror_typed_signature() -> None:
    base = inspect.signature(CPUHooks.on_trampoline)
    chained = inspect.signature(ChainedHooks.on_trampoline)
    assert list(chained.parameters) == list(base.parameters)
    for name, param in base.parameters.items():
        assert chained.parameters[name].kind == param.kind, name


def test_chained_hooks_fan_out_positionally() -> None:
    seen = []

    class Probe(CPUHooks):
        def on_trampoline(self, site_pc, stub_pc, target, skipped, n_instr,
                          got_load, abtb_hit, mispredicted):
            seen.append((site_pc, stub_pc, target, skipped, n_instr,
                         got_load, abtb_hit, mispredicted))

    hooks = ChainedHooks(Probe(), None, Probe())
    hooks.on_trampoline(1, 2, 3, True, 0, False, True, False)
    assert seen == [(1, 2, 3, True, 0, False, True, False)] * 2


@pytest.mark.parametrize(
    "field,value",
    [
        ("l1i_bytes", 3000),
        ("l1d_bytes", 0),
        ("l2_bytes", 5 * 1024 * 1024),
        ("line_bytes", 48),
        ("itlb_entries", 100),
        ("dtlb_entries", -4),
        ("btb_entries", 2000),
        ("gshare_entries", 4097),
    ],
)
def test_cpu_config_rejects_non_power_of_two(field: str, value: int) -> None:
    with pytest.raises(ValueError, match=field):
        CPUConfig(**{field: value})


@pytest.mark.parametrize(
    "field,value",
    [
        ("l1i_ways", 0),
        ("btb_ways", -1),
        ("ras_depth", 0),
        ("history_bits", 0),
        ("history_bits", 33),
        ("direct_btb_bubble", -1.0),
    ],
)
def test_cpu_config_rejects_bad_values(field: str, value) -> None:
    with pytest.raises(ValueError, match=field):
        CPUConfig(**{field: value})


def test_cpu_config_defaults_still_valid() -> None:
    CPUConfig()  # must not raise


# ------------------------------------------------------------- TraceCursor


def test_trace_cursor_drain_and_seek() -> None:
    cursor = TraceCursor(iter(range(10)))
    assert cursor.drain(3) == 3
    assert cursor.index == 3
    cursor.seek(7)
    assert next(iter(cursor)) == 7
    assert cursor.index == 8
    with pytest.raises(TraceError):
        cursor.seek(2)
    with pytest.raises(TraceError):
        cursor.seek(99)


def test_trace_cursor_base_index_offsets_position() -> None:
    cursor = TraceCursor(iter(range(5)), base_index=100)
    cursor.drain()
    assert cursor.index == 105


def test_injector_base_index_drops_prefix_schedule() -> None:
    from repro.chaos.faults import ChaosContext, Fault
    from repro.chaos.injector import Injector

    class Noop(Fault):
        name = "noop"

        def fire(self, ctx, rng):
            return []

    ctx = ChaosContext.__new__(ChaosContext)  # schedule logic only
    fault = Noop()
    inj = Injector([fault], ctx, at=[(5, fault), (50, fault)], base_index=10)
    assert inj.index == 10
    assert inj.dropped_schedule == 1
    assert [pos for pos, _ in inj._scheduled] == [50]
    with pytest.raises(ChaosError):
        Injector([fault], ctx, base_index=-1)


# --------------------------------------------------------- sharded campaign


def test_sharded_campaign_matches_serial_byte_for_byte(tmp_path) -> None:
    workloads = ["firefox", "mysql"]
    serial = run_campaign(
        workloads, TINY, abtb_sizes=(16, 64),
        checkpoint_path=tmp_path / "serial.json",
    )
    sharded = run_campaign(
        workloads, TINY, abtb_sizes=(16, 64),
        checkpoint_path=tmp_path / "sharded.json",
        jobs=2, machine_cache_dir=tmp_path / "mc",
    )
    assert serial.ok and sharded.ok
    assert serial.completed == sharded.completed
    assert list(serial.completed) == list(sharded.completed)
    assert (tmp_path / "serial.json").read_bytes() == (
        tmp_path / "sharded.json"
    ).read_bytes()


def test_sharded_campaign_resumes_from_checkpoint(tmp_path) -> None:
    path = tmp_path / "ck.json"
    first = run_campaign(["firefox"], TINY, abtb_sizes=(16,), checkpoint_path=path)
    assert first.ok and first.resumed == 0
    again = run_campaign(
        ["firefox"], TINY, abtb_sizes=(16, 64), checkpoint_path=path, jobs=2
    )
    assert again.ok
    assert again.resumed == 1  # the abtb=16 pair came from the checkpoint
    assert first.completed["firefox::abtb=16::scale=tiny"] == \
        again.completed["firefox::abtb=16::scale=tiny"]


def test_campaign_custom_run_fn_stays_serial(tmp_path) -> None:
    """Unpicklable run_fn/sleep_fn must keep working with jobs > 1."""
    calls = []

    def fake_run(workload, scale, abtb):
        calls.append((workload, abtb))
        from types import SimpleNamespace
        counters = SimpleNamespace(
            instructions=100, cycles=50.0, trampolines_skipped=1,
            trampolines_executed=1,
        )
        run = SimpleNamespace(counters=counters, unmatched_marks=0, skip_rate=0.5)
        return run, run

    result = run_campaign(
        ["firefox"], TINY, abtb_sizes=(16, 64), jobs=4,
        run_fn=fake_run, sleep_fn=lambda s: None,
    )
    assert result.ok
    assert calls == [("firefox", 16), ("firefox", 64)]


def test_campaign_rejects_bad_jobs() -> None:
    with pytest.raises(ConfigError):
        run_campaign(["firefox"], TINY, jobs=0)


def test_sharded_campaign_merges_worker_metrics(tmp_path) -> None:
    from repro.obs import Observability

    obs = Observability(metrics_out=str(tmp_path / "m.jsonl"), sample_every=0)
    result = run_campaign(
        ["firefox"], TINY, abtb_sizes=(16, 64), jobs=2, obs=obs
    )
    assert result.ok
    assert obs.metrics.counter("campaign.pairs_completed").value == 2.0
    assert len(obs.metrics.series("campaign.speedup")) == 2


# ------------------------------------------------------------- CLI surface


def test_cli_checkpoint_roundtrip(tmp_path, capsys) -> None:
    from repro.cli import main

    out = tmp_path / "ck.json"
    assert main([
        "checkpoint", "save", "firefox", "--out", str(out),
        "--requests", "2", "--enhanced", "--abtb", "32",
    ]) == 0
    assert out.exists()
    assert main(["checkpoint", "info", str(out)]) == 0
    info = capsys.readouterr().out
    assert "trace position" in info and "abtb_entries" in info
    assert main(["checkpoint", "verify", str(out)]) == 0


def test_cli_campaign_jobs_flag(tmp_path) -> None:
    from repro.cli import build_parser

    args = build_parser().parse_args([
        "campaign", "--workloads", "firefox", "--jobs", "2",
        "--machine-cache", str(tmp_path / "mc"),
    ])
    assert args.jobs == 2
    assert args.machine_cache == str(tmp_path / "mc")
