#!/usr/bin/env python3
"""ABTB sizing study — the paper's Figure 5 plus a cost/benefit table.

Sweeps the ABTB from 1 to 512 entries across the plotted workloads,
printing skip rates, storage cost, and where each workload's "working
set" knee falls.

Usage::

    python examples/abtb_sizing.py [workload ...]
"""

from __future__ import annotations

import sys

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.core.abtb import ABTB_ENTRY_BYTES
from repro.experiments.runner import run_workload
from repro.workloads import ALL_WORKLOADS

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def sweep(name: str) -> list[tuple[int, float]]:
    """(entries, skip rate) for one workload across the size sweep."""
    module = ALL_WORKLOADS[name]
    points = []
    for entries in SIZES:
        result = run_workload(
            module.config(),
            TrampolineSkipMechanism(MechanismConfig(abtb_entries=entries)),
            warmup_requests=10,
            measured_requests=40,
        )
        points.append((entries, result.skip_rate))
    return points


def knee(points: list[tuple[int, float]]) -> int:
    """Smallest size reaching within 3% of the sweep's best skip rate."""
    best = max(s for _, s in points)
    for entries, skip in points:
        if skip >= best - 0.03:
            return entries
    return points[-1][0]


def main() -> None:
    names = sys.argv[1:] or ["apache", "firefox", "memcached"]
    print("== ABTB sizing (paper Figure 5) ==\n")
    header = f"{'entries':>8}{'bytes':>8}" + "".join(f"{n:>12}" for n in names)
    print(header)
    curves = {name: sweep(name) for name in names}
    for i, entries in enumerate(SIZES):
        row = f"{entries:>8}{entries * ABTB_ENTRY_BYTES:>8}"
        for name in names:
            row += f"{curves[name][i][1]:>11.1%} "
        print(row)
    print()
    for name in names:
        k = knee(curves[name])
        print(f"{name}: working-set knee at ~{k} entries ({k * ABTB_ENTRY_BYTES} bytes)")
    print("\npaper: 16 entries (192 B) already skip >75%; 256 entries skip nearly all")


if __name__ == "__main__":
    main()
