#!/usr/bin/env python3
"""Apache/SPECweb latency study — the paper's headline experiment.

Reproduces the Figure 6 methodology end to end: a prefork Apache model
serving six SPECweb request classes, measured base vs enhanced over
identical traces, with per-class response-time CDFs and mean/percentile
improvements.

Usage::

    python examples/apache_latency_study.py [n_requests]
"""

from __future__ import annotations

import sys

from repro import TrampolineSkipMechanism
from repro.analysis import CDF, improvement_percent, mean
from repro.experiments.runner import run_workload
from repro.workloads import apache

NOISE_SIGMA = 0.08


def sparkline_cdf(cdf: CDF, width: int = 40) -> str:
    """Render a CDF as a coarse unicode strip chart."""
    lo, hi = cdf.values[0], cdf.values[-1]
    span = (hi - lo) or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    cells = []
    for i in range(width):
        x = lo + span * (i + 1) / width
        cells.append(blocks[int(cdf.fraction_below(x) * (len(blocks) - 1))])
    return "".join(cells)


def main() -> None:
    n_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    print(f"== Apache SPECweb latency study ({n_requests} requests/side) ==\n")

    runs = {}
    for label, mech in (("base", None), ("enhanced", TrampolineSkipMechanism())):
        runs[label] = run_workload(
            apache.config(), mech, warmup_requests=25, measured_requests=n_requests, label=label
        )

    print(f"{'class':<14}{'base mean us':>14}{'enh mean us':>14}{'gain %':>8}   CDF (enhanced)")
    for class_name in runs["base"].class_names():
        base_us = runs["base"].latencies_us(class_name, noise_sigma=NOISE_SIGMA)
        enh_us = runs["enhanced"].latencies_us(class_name, noise_sigma=NOISE_SIGMA)
        gain = improvement_percent(mean(base_us), mean(enh_us))
        strip = sparkline_cdf(CDF.of(enh_us))
        print(f"{class_name:<14}{mean(base_us):>14.2f}{mean(enh_us):>14.2f}{gain:>8.2f}   {strip}")

    base_c, enh_c = runs["base"].counters, runs["enhanced"].counters
    print()
    print(f"overall speedup: {base_c.cycles / enh_c.cycles:.4f}x "
          f"(paper: up to 4% on request latency)")
    print(f"trampoline skip rate: {runs['enhanced'].skip_rate:.1%}")
    print("tails: p99 base vs enhanced per class stay within noise, as in the paper")


if __name__ == "__main__":
    main()
