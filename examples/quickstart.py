#!/usr/bin/env python3
"""Quickstart: run one workload on the base and enhanced CPUs.

Builds the Memcached workload model, runs identical instruction traces
through a baseline CPU and one equipped with the trampoline-skip
mechanism (ABTB + Bloom filter), and prints the paper's headline
quantities: trampoline rate, skip rate, counter deltas and speedup.

Usage::

    python examples/quickstart.py [workload]   # apache|firefox|memcached|mysql
"""

from __future__ import annotations

import sys

from repro import MechanismConfig, TrampolineSkipMechanism
from repro.experiments.runner import run_workload
from repro.workloads import ALL_WORKLOADS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "memcached"
    if name not in ALL_WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick one of {sorted(ALL_WORKLOADS)}")
    module = ALL_WORKLOADS[name]

    print(f"== {name}: base vs enhanced (256-entry ABTB) ==")
    results = {}
    for label, mechanism in (
        ("base", None),
        ("enhanced", TrampolineSkipMechanism(MechanismConfig(abtb_entries=256))),
    ):
        results[label] = run_workload(
            module.config(),
            mechanism,
            warmup_requests=20,
            measured_requests=120,
            label=label,
        )

    base, enh = results["base"].counters, results["enhanced"].counters
    print(f"instructions          {base.instructions:>12,} -> {enh.instructions:>12,}")
    print(f"trampolines executed  {base.trampolines_executed:>12,} -> {enh.trampolines_executed:>12,}")
    print(f"trampolines skipped   {'-':>12} -> {enh.trampolines_skipped:>12,}")
    print(f"skip rate             {results['enhanced'].skip_rate:.1%}")
    print()
    print(f"{'counter (PKI)':<24}{'base':>10}{'enhanced':>10}")
    for metric, value in base.table4_row().items():
        print(f"{metric:<24}{value:>10.3f}{enh.table4_row()[metric]:>10.3f}")
    print()
    speedup = base.cycles / enh.cycles
    print(f"cycles                {base.cycles:>14,.0f} -> {enh.cycles:>14,.0f}")
    print(f"speedup               {speedup:.4f}x  ({(speedup - 1) * 100:+.2f}%)")
    storage = results["enhanced"].mechanism.storage_bytes
    print(f"hardware cost         {storage:,} bytes (ABTB + Bloom filter)")


if __name__ == "__main__":
    main()
