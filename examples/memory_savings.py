#!/usr/bin/env python3
"""Memory-savings study — Section 5.5 of the paper.

Forks a prefork Apache worker pool, lets the software call-site patcher
rewrite call sites lazily (privatising shared code pages via
copy-on-write), and contrasts the physical-memory bill with the
patch-before-fork variant and with the proposed hardware (which leaves
code pages untouched).

Usage::

    python examples/memory_savings.py [workers]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.memory.cow import measure
from repro.memory.pages import PAGE_SIZE
from repro.trace.engine import LinkMode
from repro.workloads import apache
from repro.workloads.base import Workload


def human(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:,.1f} {unit}"
        n /= 1024
    return f"{n:,.1f} TB"


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    print(f"== Section 5.5 memory study: prefork Apache, {workers} workers ==\n")

    cfg = replace(apache.config(), sites_per_pair=3)
    wl = Workload(cfg, mode=LinkMode.PATCHED)
    parent = wl.address_space
    assert parent is not None and wl.patcher is not None

    children = [parent.fork(f"worker{i}") for i in range(workers)]
    wl.patcher.spaces = children
    shared_before = measure(wl.phys, children)
    print(f"after fork, before patching: {shared_before.total_frames} physical frames, "
          f"{shared_before.shared_frames} shared")

    for _ in wl.trace(60, include_marks=False):
        pass

    after = measure(wl.phys, children)
    stats = wl.patcher.stats
    extra = after.total_bytes - shared_before.total_bytes
    print(f"\nlazy patch-after-fork (the naive software emulation):")
    print(f"  call sites patched : {stats.sites_patched:,}")
    print(f"  code pages touched : {stats.pages_touched:,}")
    print(f"  mprotect calls     : {stats.mprotect_calls:,}")
    print(f"  CoW page copies    : {after.cow_faults - shared_before.cow_faults:,}")
    print(f"  waste per process  : {human(stats.wasted_bytes_per_process)}"
          f"  (paper: ~1.1 MB)")
    print(f"  waste, this pool   : {human(extra)}")
    print(f"  waste @500 workers : {human(stats.wasted_bytes_per_process * 500)}"
          f"  (paper: ~0.5 GB)")

    eager_pages = stats.pages_touched
    print(f"\npatch-before-fork: {human(eager_pages * PAGE_SIZE)} once, shared by all workers,")
    print("  but every site must be resolved eagerly — lazy loading is lost")
    print("\nproposed hardware: 0 bytes — code pages stay read-only and shared")


if __name__ == "__main__":
    main()
