#!/usr/bin/env python3
"""Runtime library replacement under the trampoline-skip hardware.

The paper notes its software-emulation baseline "doesn't support
unloading or replacing libraries; on the other hand, the hardware we
propose implicitly supports these operations."  This example demonstrates
that property end to end:

1. an app calls a plugin function through its PLT; the mechanism learns
   the trampoline and starts skipping it;
2. the plugin is dlclose'd — ld.so resets the GOT slots, the Bloom
   filter observes the stores, and the ABTB flushes;
3. a new version of the plugin is dlopen'd at a different address;
4. calls lazily re-resolve, the mechanism relearns, and skipping resumes
   — with **zero unsafe skips** throughout.

Usage::

    python examples/plugin_reload.py
"""

from __future__ import annotations

from repro.core import TrampolineSkipMechanism
from repro.linker import ClassicLayout, DynamicLinker, FunctionSpec, ModuleSpec
from repro.trace.engine import ExecutionEngine
from repro.uarch import CPU


def plugin_spec(version: int) -> ModuleSpec:
    return ModuleSpec(
        f"plugin.so",
        [FunctionSpec("plugin_handle", 256 + 64 * version), FunctionSpec("plugin_misc", 128)],
        imports=[],
    )


def call_batch(engine: ExecutionEngine, cpu: CPU, site: int, n: int) -> None:
    for _ in range(n):
        events, binding = engine.call_events("app", "plugin_handle", site)
        events += engine.return_events(binding, site)
        cpu.run(events)


def main() -> None:
    exe = ModuleSpec("app", [FunctionSpec("main", 512)], imports=["plugin_handle"])
    layout = ClassicLayout(aslr=True, seed=11)
    linker = DynamicLinker()
    program = linker.link(exe, [plugin_spec(1)], layout)
    engine = ExecutionEngine(program)
    mech = TrampolineSkipMechanism()
    cpu = CPU(mechanism=mech)
    site = program.module("app").function("main").entry + 32

    print("== phase 1: plugin v1 loaded ==")
    v1_addr = program.symbols.lookup("plugin_handle").address
    call_batch(engine, cpu, site, 20)
    c = cpu.finalize()
    print(f"plugin_handle @ {v1_addr:#x}")
    print(f"trampolines executed {c.trampolines_executed}, skipped {c.trampolines_skipped}")

    print("\n== phase 2: dlclose(plugin.so) ==")
    cpu.run(engine.dlclose_events("plugin.so"))
    print(f"ABTB entries after unload: {len(mech.abtb)} (flushed by the GOT-reset store)")

    print("\n== phase 3: dlopen(plugin.so v2) at a new address ==")
    linker.dlopen(program, plugin_spec(2), layout)
    v2_addr = program.symbols.lookup("plugin_handle").address
    print(f"plugin_handle now @ {v2_addr:#x} (moved {abs(v2_addr - v1_addr):,} bytes)")
    skipped_before = cpu.finalize().trampolines_skipped
    call_batch(engine, cpu, site, 20)
    c = cpu.finalize()
    print(f"calls re-resolved lazily; skipped {c.trampolines_skipped - skipped_before} of 20 new calls")

    print(f"\nunsafe skips across the whole scenario: {mech.stats.unsafe_skips} (must be 0)")
    assert mech.stats.unsafe_skips == 0
    assert v1_addr != v2_addr
    print("the hardware handled unload/replace transparently — the software")
    print("patching baseline would have left dangling direct calls to v1")


if __name__ == "__main__":
    main()
