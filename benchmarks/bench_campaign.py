"""Wall-clock budget for the sharded, cache-backed campaign runner.

The parallel campaign's contract has two halves:

* **Correctness** — a sharded campaign produces byte-identical numbers
  to the serial one, and the batched backend plus the trace/machine
  caches never shift a counter (re-asserted here: all arms must agree
  summary-for-summary).
* **Speed** — a ``--jobs 4`` campaign running the array-native pipeline
  (batched backend + content-addressed trace store + warm-machine
  checkpoints) must beat the plain serial reference campaign **from a
  cold cache** by >= 1.5x, and from a warm cache by the same bound with
  margin.  Cold is the honest number: it includes generating each
  workload's trace once, serialising it, and filling the machine cache
  — the one-time costs the old benchmark recorded as a < 1x "cold"
  arm.  The trace store turns those from per-run costs into per-recipe
  costs (base + enhanced and every ABTB size share one bundle), which
  is what moves cold past the bound.

The workload mix is warm-up heavy (``startup`` dominates ``steady``):
the regime both caches target.  Numbers land in
``benchmarks/output/campaign.json`` for EXPERIMENTS.md.

Run with ``pytest benchmarks/bench_campaign.py -q -s``.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.experiments.runner import run_campaign
from repro.experiments.scale import Scale

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Warm-up heavy mix: long startups, short steady phases.
BENCH_SCALE = Scale("bench", {"memcached": (400, 80), "apache": (40, 8)})
WORKLOADS = ("memcached", "apache")
ABTB_SIZES = (16, 64, 256)
JOBS = 4
#: Acceptance bound from the issue: cold-cache sharded pipeline campaign
#: vs plain serial reference campaign (warm must clear it a fortiori).
MIN_SPEEDUP = 1.5


def _campaign(jobs: int, backend: str, cache_root: str | None) -> tuple[float, dict]:
    kwargs = {}
    if cache_root is not None:
        root = pathlib.Path(cache_root)
        kwargs = {
            "machine_cache_dir": root / "machines",
            "trace_cache_dir": root / "traces",
        }
    start = time.perf_counter()
    result = run_campaign(
        WORKLOADS,
        BENCH_SCALE,
        abtb_sizes=ABTB_SIZES,
        jobs=jobs,
        backend=backend,
        **kwargs,
    )
    elapsed = time.perf_counter() - start
    assert result.ok and len(result.completed) == len(WORKLOADS) * len(ABTB_SIZES)
    return elapsed, result.completed


def test_sharded_campaign_speedup():
    """serial reference vs jobs=4 pipeline, cold cache and warm cache."""
    serial_s, serial_summary = _campaign(jobs=1, backend="reference", cache_root=None)

    with tempfile.TemporaryDirectory() as cache:
        cold_s, cold_summary = _campaign(jobs=JOBS, backend="batched", cache_root=cache)
        warm_s, warm_summary = _campaign(jobs=JOBS, backend="batched", cache_root=cache)

    # Identical numbers across all three arms — speed never buys drift.
    assert serial_summary == cold_summary == warm_summary

    speedup_cold = serial_s / cold_s
    speedup_warm = serial_s / warm_s
    record = {
        "scale": {name: list(req) for name, req in BENCH_SCALE.requests.items()},
        "abtb_sizes": list(ABTB_SIZES),
        "jobs": JOBS,
        "sharded_backend": "batched",
        "caches": ["machine checkpoints", "trace store"],
        "serial_reference_s": round(serial_s, 3),
        "sharded_cold_cache_s": round(cold_s, 3),
        "sharded_warm_cache_s": round(warm_s, 3),
        "speedup_cold_cache": round(speedup_cold, 3),
        "speedup_warm_cache": round(speedup_warm, 3),
        "cache_reuse_saving_s": round(serial_s - warm_s, 3),
        # Asserted verbatim below, on BOTH the cold and warm arms.
        "min_speedup_bound": MIN_SPEEDUP,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "campaign.json").write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nserial reference {serial_s:.1f}s | jobs={JOBS} cold-cache {cold_s:.1f}s "
        f"(x{speedup_cold:.2f}) | jobs={JOBS} warm-cache {warm_s:.1f}s "
        f"(x{speedup_warm:.2f}) | bound x{MIN_SPEEDUP} on both"
    )
    assert speedup_cold >= MIN_SPEEDUP, (
        f"cold-cache sharded pipeline campaign only x{speedup_cold:.2f} vs serial "
        f"(bound x{MIN_SPEEDUP}); the trace/machine cache fill no longer pays"
    )
    assert speedup_warm >= MIN_SPEEDUP, (
        f"warm-cache sharded campaign only x{speedup_warm:.2f} vs serial "
        f"(bound x{MIN_SPEEDUP}); cache reuse regressed"
    )
