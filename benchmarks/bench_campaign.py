"""Wall-clock budget for the sharded campaign runner.

The parallel campaign's contract has two halves:

* **Correctness** — a sharded campaign produces byte-identical numbers to
  the serial one (held by ``tests/test_snapshot.py`` and the CI smoke
  job, not re-asserted here).
* **Speed** — a campaign that can reuse checkpointed warm-up state must
  beat a cold serial campaign by a real margin.  This benchmark measures
  that margin and asserts the acceptance bound (>= 1.5x at ``--jobs 4``
  with a warm machine cache).

The workload mix is deliberately warm-up heavy (``startup`` dominates
``steady``): that is the regime the machine cache targets, because the
warm-up prefix of every (workload, mode) pair is simulated once, saved
as a :class:`~repro.uarch.MachineState`, and every later ABTB size
restores it instead of re-simulating.  Numbers are written to
``benchmarks/output/campaign.json`` for EXPERIMENTS.md.

Run with ``pytest benchmarks/bench_campaign.py -q -s``.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.experiments.runner import run_campaign
from repro.experiments.scale import Scale

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Warm-up heavy mix: long startups, short steady phases.
BENCH_SCALE = Scale("bench", {"memcached": (400, 80), "apache": (40, 8)})
WORKLOADS = ("memcached", "apache")
ABTB_SIZES = (16, 64, 256)
JOBS = 4
#: Acceptance bound from the issue: warm-cache sharded campaign vs cold
#: serial campaign.
MIN_SPEEDUP = 1.5


def _campaign(jobs: int, cache_dir: str | None) -> tuple[float, dict]:
    start = time.perf_counter()
    result = run_campaign(
        WORKLOADS,
        BENCH_SCALE,
        abtb_sizes=ABTB_SIZES,
        jobs=jobs,
        machine_cache_dir=cache_dir,
    )
    elapsed = time.perf_counter() - start
    assert result.ok and len(result.completed) == len(WORKLOADS) * len(ABTB_SIZES)
    return elapsed, result.completed


def test_sharded_campaign_speedup_with_warm_cache():
    """serial-cold vs jobs=4 cold-cache vs jobs=4 warm-cache.

    The cold-cache arm pays the one-time fill (simulate + validated
    checkpoint write); the warm-cache arm restores every warm-up prefix
    and must clear the 1.5x acceptance bound against serial-cold.
    """
    serial_s, serial_summary = _campaign(jobs=1, cache_dir=None)

    with tempfile.TemporaryDirectory() as cache:
        cold_s, cold_summary = _campaign(jobs=JOBS, cache_dir=cache)
        warm_s, warm_summary = _campaign(jobs=JOBS, cache_dir=cache)

    # Identical numbers across all three arms — speed never buys drift.
    assert serial_summary == cold_summary == warm_summary

    speedup_cold = serial_s / cold_s
    speedup_warm = serial_s / warm_s
    record = {
        "scale": {name: list(req) for name, req in BENCH_SCALE.requests.items()},
        "abtb_sizes": list(ABTB_SIZES),
        "jobs": JOBS,
        "serial_cold_s": round(serial_s, 3),
        "sharded_cold_cache_s": round(cold_s, 3),
        "sharded_warm_cache_s": round(warm_s, 3),
        "speedup_cold_cache": round(speedup_cold, 3),
        "speedup_warm_cache": round(speedup_warm, 3),
        "checkpoint_reuse_saving_s": round(serial_s - warm_s, 3),
        "min_speedup_bound": MIN_SPEEDUP,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "campaign.json").write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nserial cold {serial_s:.1f}s | jobs={JOBS} cold-cache {cold_s:.1f}s "
        f"(x{speedup_cold:.2f}) | jobs={JOBS} warm-cache {warm_s:.1f}s "
        f"(x{speedup_warm:.2f}, bound x{MIN_SPEEDUP})"
    )
    assert speedup_warm >= MIN_SPEEDUP, (
        f"warm-cache sharded campaign only x{speedup_warm:.2f} vs serial "
        f"(bound x{MIN_SPEEDUP}); checkpoint reuse regressed"
    )
