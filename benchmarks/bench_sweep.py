"""Throughput and cache effectiveness of the design-space sweep engine.

Two claims the sweep engine makes, measured here at benchmark scale:

* **Deduplication** — every point of one workload consumes one stored
  trace bundle (the trace key excludes mechanism and CPU axes), so a
  grid that is wide in configurations but narrow in workloads should
  show a trace-cache hit rate approaching ``1 - workloads/points``.
* **Resume is free** — rerunning a completed sweep directory re-executes
  zero points; its wall-clock is pure checkpoint-load plus analysis and
  must be a small fraction of the original run.

The grid (2 workloads × 3 ABTB sizes × 2 associativities × 2 Bloom
geometries = 24 points) matches the CI smoke job's shape at larger
windows.  Numbers land in ``benchmarks/output/sweep.json`` for
EXPERIMENTS.md.

Run with ``pytest benchmarks/bench_sweep.py -q -s``.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.sweep import SweepSpec, run_sweep

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

SPEC = SweepSpec(
    name="bench",
    workloads=("memcached", "apache"),
    warmup=5,
    measured=20,
    abtb_entries=(16, 64, 256),
    abtb_ways=(0, 4),
    bloom_bits=(1 << 14, 1 << 17),
)
JOBS = 4
#: Resume must cost at most this fraction of the original sharded run.
MAX_RESUME_FRACTION = 0.5


def test_sweep_dedup_and_resume():
    """24-point sharded sweep: trace dedup by construction, free resume."""
    with tempfile.TemporaryDirectory() as td:
        out = pathlib.Path(td) / "sweep"
        start = time.perf_counter()
        first = run_sweep(SPEC, out, jobs=JOBS)
        run_s = time.perf_counter() - start

        assert first.ok
        assert first.summary["completed"] == len(SPEC.expand()) == 24
        cache = first.summary["trace_cache"]
        # 24 points, 2 workloads: every load beyond the per-worker first
        # touch hits the shared store.
        assert cache["hit_rate"] > 0.5, cache

        start = time.perf_counter()
        resumed = run_sweep(None, out, jobs=JOBS)
        resume_s = time.perf_counter() - start
        assert resumed.summary["executed"] == 0
        assert resumed.summary["resumed"] == 24
        assert resume_s < run_s * MAX_RESUME_FRACTION, (
            f"resume {resume_s:.2f}s vs run {run_s:.2f}s"
        )

        pareto = first.analysis["pareto"]
        assert pareto, "no Pareto frontier emitted"

    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "points": first.summary["points"],
        "jobs": JOBS,
        "run_s": round(run_s, 3),
        "resume_s": round(resume_s, 3),
        "trace_cache": cache,
        "pareto_size": len(pareto),
        "best": first.analysis["best"]["overall"],
    }
    (OUTPUT_DIR / "sweep.json").write_text(json.dumps(payload, indent=2))
    print(
        f"\nsweep: 24 points --jobs {JOBS} in {run_s:.2f}s, "
        f"resume {resume_s:.2f}s, trace-cache hit rate {cache['hit_rate']:.1%}, "
        f"pareto {len(pareto)}"
    )
