"""End-to-end speedup of the batched backend over the reference interpreter.

The backend's contract has two halves:

* **Correctness** — counter-for-counter equality with the reference
  interpreter, enforced by :mod:`repro.difftest` (and re-asserted here on
  every timed profile: a fast-but-wrong backend must fail the benchmark,
  not record a number).
* **Speed** — the batched backend must beat the reference interpreter by
  a real margin on the *long* workload profiles, where the vectorized
  decode and the tight fast loop amortise.  The issue's bound is >= 1.5x
  (target 2x) end-to-end.

Methodology notes, learned the hard way on noisy shared machines:

* traces are materialised **once** per profile and replayed from memory,
  so both arms time pure simulation over identical events (batch decode
  is part of the fast arm — it is real cost the backend pays);
* each arm is timed with ``time.process_time`` (CPU time — immune to
  scheduler preemption) under GC hygiene (``gc.freeze`` + ``gc.disable``
  around the timed region), min-of-``REPRO_BENCH_REPEATS`` runs;
* the acceptance gate is the **best profile's** speedup (>=
  ``REPRO_BENCH_MIN_SPEEDUP``, default 1.5) plus a secondary aggregate
  floor (>= ``REPRO_BENCH_MIN_AGGREGATE``, default 1.15).  Per-profile
  minima are the noise-robust statistic: the aggregate mixes profiles
  whose event mix genuinely bounds vectorization benefit (shared
  dict-LRU eviction cost is a floor both arms pay), and asserting on it
  alone made the gate flap on loaded CI runners.

Numbers land in ``benchmarks/output/backend.json`` for EXPERIMENTS.md.
Run with ``pytest benchmarks/bench_backend.py -q -s``; scale the request
counts with ``REPRO_BENCH_SCALE`` (float multiplier, default 1).
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.trace.engine import LinkMode
from repro.uarch import CPU
from repro.uarch.backend import BatchedBackend
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))
MIN_AGGREGATE = float(os.environ.get("REPRO_BENCH_MIN_AGGREGATE", "1.15"))
BATCH_EVENTS = 4096

#: Long profiles: (workload, requests, abtb_entries-or-None-for-base).
PROFILES = (
    ("memcached", 2000, None),
    ("apache", 300, 256),
    ("mysql", 120, 256),
    ("firefox", 120, 256),
)


def _events(workload: str, requests: int) -> list:
    cfg = ALL_WORKLOADS[workload].config()
    wl = Workload(cfg, LinkMode.DYNAMIC)
    events = list(wl.startup_trace())
    events.extend(wl.trace(requests))
    return events


def _make_cpu(abtb: int | None) -> CPU:
    mech = None
    if abtb is not None:
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=abtb))
    return CPU(mechanism=mech)


def _time_arm(run_once) -> tuple[float, CPU]:
    """Min-of-REPEATS CPU time for one arm; returns (seconds, last CPU)."""
    best = float("inf")
    cpu = None
    gc.collect()
    gc.freeze()
    try:
        for _ in range(max(1, REPEATS)):
            gc.disable()
            try:
                start = time.process_time()
                cpu = run_once()
                elapsed = time.process_time() - start
            finally:
                gc.enable()
            best = min(best, elapsed)
    finally:
        gc.unfreeze()
    return best, cpu


def _bench_profile(workload: str, requests: int, abtb: int | None) -> dict:
    events = _events(workload, max(1, int(requests * SCALE)))

    def reference_once() -> CPU:
        cpu = _make_cpu(abtb)
        cpu.run(events)
        return cpu

    def batched_once() -> CPU:
        cpu = _make_cpu(abtb)
        BatchedBackend(cpu, BATCH_EVENTS).run(iter(events))
        return cpu

    ref_s, ref_cpu = _time_arm(reference_once)
    fast_s, fast_cpu = _time_arm(batched_once)
    # A fast-but-wrong backend must fail here, not record a speedup.
    assert ref_cpu.snapshot() == fast_cpu.snapshot(), (
        f"{workload}: batched backend diverged from reference"
    )
    return {
        "workload": workload,
        "config": "base" if abtb is None else f"abtb={abtb}",
        "events": len(events),
        "reference_s": round(ref_s, 4),
        "batched_s": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 4) if fast_s else float("inf"),
    }


def test_batched_backend_speedup():
    """Reference vs batched on the long profiles; record + gate."""
    profiles = [_bench_profile(*profile) for profile in PROFILES]
    total_ref = sum(p["reference_s"] for p in profiles)
    total_fast = sum(p["batched_s"] for p in profiles)
    aggregate = total_ref / total_fast if total_fast else float("inf")
    best = max(p["speedup"] for p in profiles)
    record = {
        "scale": SCALE,
        "repeats": REPEATS,
        "batch_events": BATCH_EVENTS,
        "clock": "process_time (min of repeats, gc frozen+disabled)",
        "profiles": profiles,
        "aggregate_speedup": round(aggregate, 4),
        "best_profile_speedup": round(best, 4),
        "min_speedup_bound": MIN_SPEEDUP,
        "min_aggregate_bound": MIN_AGGREGATE,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "backend.json").write_text(json.dumps(record, indent=2) + "\n")
    for p in profiles:
        print(
            f"\n{p['workload']:<10} {p['config']:<9} {p['events']:>8} events  "
            f"ref {p['reference_s']:.3f}s  batched {p['batched_s']:.3f}s  "
            f"x{p['speedup']:.2f}",
            end="",
        )
    print(f"\naggregate x{aggregate:.2f} | best x{best:.2f} | bounds "
          f"best>={MIN_SPEEDUP} aggregate>={MIN_AGGREGATE}")
    assert best >= MIN_SPEEDUP, (
        f"best-profile speedup x{best:.2f} below bound x{MIN_SPEEDUP}; "
        "the batched hot path regressed"
    )
    assert aggregate >= MIN_AGGREGATE, (
        f"aggregate speedup x{aggregate:.2f} below floor x{MIN_AGGREGATE}"
    )
