"""End-to-end speedup of the array-native trace pipeline.

Until the structured-array refactor, this benchmark timed the batched
backend against the reference interpreter over a pre-materialised event
list — pure retirement, with generation cost outside the timer.  That
understated what the pipeline actually buys: in a campaign, the legacy
path pays Python-iterator *generation* plus reference *interpretation*
on every run, while the array-native path loads codec-serialised
:class:`~repro.trace.batch.TraceBatch` bytes and retires them in bulk.
The benchmark now times those two real arms:

* **legacy arm** — fresh workload generators feed the reference
  interpreter event by event (generation + simulation, exactly what a
  pre-refactor campaign run did);
* **stream arm** — the serialised batches are decoded from in-memory
  bytes and driven through ``BatchedBackend.run_batches`` (codec decode
  is inside the timer — it is real cost the pipeline pays every run).

The one-time cost of generating and serialising the batches is measured
and recorded (``generate_and_save_s``) but not charged to the stream
arm: a campaign amortises it over base + enhanced runs and every ABTB
sweep point (the trace key excludes both), so even a minimal pair reuses
it once and a sweep reuses it 2 x N times.

Correctness is re-asserted on every timed profile — both arms must
finish with identical full ``CPU.snapshot()`` state, so a fast-but-wrong
pipeline fails the benchmark instead of recording a number.

Gate discipline (this bit used to be inconsistent — the recorded bounds
and the enforced asserts have to be the same thing): **every** profile
must clear ``min_profile_bound`` (``REPRO_BENCH_MIN_SPEEDUP``, default
1.5) and the aggregate (total legacy seconds / total stream seconds)
must clear ``min_aggregate_bound`` (``REPRO_BENCH_MIN_AGGREGATE``,
default 3.0, the issue's pipeline target).  Timing uses
``time.process_time`` (CPU time — immune to scheduler preemption),
min-of-``REPRO_BENCH_REPEATS`` runs, with GC frozen and disabled around
the timed regions.

Numbers land in ``benchmarks/output/backend.json`` for EXPERIMENTS.md.
Run with ``pytest benchmarks/bench_backend.py -q -s``; scale the request
counts with ``REPRO_BENCH_SCALE`` (float multiplier, default 1).
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import pathlib
import time

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.trace.batch import TraceBatch
from repro.trace.engine import LinkMode
from repro.uarch import CPU
from repro.uarch.backend import BatchedBackend
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
MIN_PROFILE = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))
MIN_AGGREGATE = float(os.environ.get("REPRO_BENCH_MIN_AGGREGATE", "3.0"))
BATCH_EVENTS = 4096

#: Long profiles: (workload, requests, abtb_entries-or-None-for-base).
PROFILES = (
    ("memcached", 2000, None),
    ("apache", 300, 256),
    ("mysql", 120, 256),
    ("firefox", 120, 256),
)


def _make_workload(workload: str) -> Workload:
    return Workload(ALL_WORKLOADS[workload].config(), LinkMode.DYNAMIC)


def _make_cpu(abtb: int | None) -> CPU:
    mech = None
    if abtb is not None:
        mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=abtb))
    return CPU(mechanism=mech)


def _time_arm(run_once) -> tuple[float, CPU]:
    """Min-of-REPEATS CPU time for one arm; returns (seconds, last CPU)."""
    best = float("inf")
    cpu = None
    gc.collect()
    gc.freeze()
    try:
        for _ in range(max(1, REPEATS)):
            gc.disable()
            try:
                start = time.process_time()
                cpu = run_once()
                elapsed = time.process_time() - start
            finally:
                gc.enable()
            best = min(best, elapsed)
    finally:
        gc.unfreeze()
    return best, cpu


def _bench_profile(workload: str, requests: int, abtb: int | None) -> dict:
    requests = max(1, int(requests * SCALE))

    # One-time pipeline cost: array-native generation + codec serialise.
    # Charged once per workload recipe in a real campaign, so recorded
    # separately rather than inside the per-run stream arm.
    start = time.process_time()
    wl = _make_workload(workload)
    startup_raw = wl.startup_batch().to_bytes()
    trace_raw = wl.trace_batch(requests).to_bytes()
    generate_and_save_s = time.process_time() - start
    n_events = (
        len(TraceBatch.from_bytes(startup_raw).data)
        + len(TraceBatch.from_bytes(trace_raw).data)
    )

    def legacy_once() -> CPU:
        # What every pre-refactor campaign run paid: stateful iterator
        # generation feeding the reference interpreter, event by event.
        w = _make_workload(workload)
        cpu = _make_cpu(abtb)
        cpu.run(itertools.chain(w.startup_trace(), w.trace(requests)))
        return cpu

    def stream_once() -> CPU:
        # What an array-native run pays: codec decode + bulk retirement.
        cpu = _make_cpu(abtb)
        BatchedBackend(cpu, BATCH_EVENTS).run_batches(
            (TraceBatch.from_bytes(startup_raw), TraceBatch.from_bytes(trace_raw))
        )
        return cpu

    legacy_s, legacy_cpu = _time_arm(legacy_once)
    stream_s, stream_cpu = _time_arm(stream_once)
    # A fast-but-wrong pipeline must fail here, not record a speedup.
    assert legacy_cpu.snapshot() == stream_cpu.snapshot(), (
        f"{workload}: array-native pipeline diverged from the legacy path"
    )
    return {
        "workload": workload,
        "config": "base" if abtb is None else f"abtb={abtb}",
        "events": n_events,
        "trace_bytes": len(startup_raw) + len(trace_raw),
        "generate_and_save_s": round(generate_and_save_s, 4),
        "legacy_s": round(legacy_s, 4),
        "stream_s": round(stream_s, 4),
        "speedup": round(legacy_s / stream_s, 4) if stream_s else float("inf"),
    }


def test_trace_pipeline_speedup():
    """Legacy generate+interpret vs codec-load+batch-retire; record + gate."""
    profiles = [_bench_profile(*profile) for profile in PROFILES]
    total_legacy = sum(p["legacy_s"] for p in profiles)
    total_stream = sum(p["stream_s"] for p in profiles)
    aggregate = total_legacy / total_stream if total_stream else float("inf")
    worst = min(p["speedup"] for p in profiles)
    record = {
        "scale": SCALE,
        "repeats": REPEATS,
        "batch_events": BATCH_EVENTS,
        "clock": "process_time (min of repeats, gc frozen+disabled)",
        "arms": {
            "legacy": "iterator generation + reference interpreter",
            "stream": "codec decode + BatchedBackend.run_batches",
        },
        "profiles": profiles,
        "aggregate_speedup": round(aggregate, 4),
        "worst_profile_speedup": round(worst, 4),
        # Both bounds below are asserted verbatim at the end of this test;
        # a recorded bound is never looser or stricter than the gate.
        "min_profile_bound": MIN_PROFILE,
        "min_aggregate_bound": MIN_AGGREGATE,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "backend.json").write_text(json.dumps(record, indent=2) + "\n")
    for p in profiles:
        print(
            f"\n{p['workload']:<10} {p['config']:<9} {p['events']:>8} events  "
            f"legacy {p['legacy_s']:.3f}s  stream {p['stream_s']:.3f}s  "
            f"x{p['speedup']:.2f}  (gen+save {p['generate_and_save_s']:.3f}s)",
            end="",
        )
    print(
        f"\naggregate x{aggregate:.2f} | worst x{worst:.2f} | bounds "
        f"every-profile>={MIN_PROFILE} aggregate>={MIN_AGGREGATE}"
    )
    for p in profiles:
        assert p["speedup"] >= MIN_PROFILE, (
            f"{p['workload']}/{p['config']}: pipeline speedup x{p['speedup']:.2f} "
            f"below per-profile bound x{MIN_PROFILE}"
        )
    assert aggregate >= MIN_AGGREGATE, (
        f"aggregate pipeline speedup x{aggregate:.2f} below bound x{MIN_AGGREGATE}"
    )
