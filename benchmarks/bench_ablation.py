"""Benchmark: regenerate the paper's design ablations — bloom sizing, replacement, explicit invalidate, ASID."""

from benchmarks.conftest import run_experiment_benchmark


def test_ablation(benchmark, bench_scale):
    """Reproduce design ablations and assert its shape checks."""
    run_experiment_benchmark(benchmark, "ablation", bench_scale)
