"""Overhead budget for the observability layer.

The layer's contract is a *null-sink fast path*: with no tracer, no
metrics, no profiler, no event bus and no progress callback configured,
the simulator must run the exact code it ran before the layer existed —
no wrapper generators, no hook dispatch, no per-event flag checks.  This
benchmark holds that contract to <5% measured slowdown (for both the
original obs pillars and the PR-7 telemetry plane), and reports (without
asserting) what the fully-enabled configurations cost.

Each test also records its numbers into ``benchmarks/output/obs.json``
so CI archives the measured overheads next to the gate verdicts.

Run with ``pytest benchmarks/bench_obs.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.experiments.runner import run_workload
from repro.obs import Observability
from repro.obs.events import EventBus
from repro.uarch import CPU
from repro.workloads import ALL_WORKLOADS, Workload

REQUESTS = 40
ROUNDS = 5
#: Disabled observability must stay within this fraction of the plain run.
MAX_DISABLED_OVERHEAD = 0.05

#: Where the measured numbers land (merged across tests, one JSON object).
OUTPUT_PATH = Path(__file__).parent / "output" / "obs.json"


def _record(**numbers) -> None:
    """Merge measured numbers into the benchmark's JSON output file."""
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    if OUTPUT_PATH.is_file():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update({k: round(v, 6) for k, v in numbers.items()})
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_plain() -> None:
    wl = Workload(ALL_WORKLOADS["memcached"].config())
    cpu = CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=256)))
    cpu.run(wl.trace(REQUESTS))
    cpu.finalize()


def _run_with_obs(obs: Observability | None) -> None:
    wl = Workload(ALL_WORKLOADS["memcached"].config())
    cpu = CPU(
        mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=256)),
        hooks=obs.hooks() if obs is not None else None,
    )
    stream = wl.trace(REQUESTS)
    if obs is not None:
        obs.attach_workload(wl)
        stream = obs.instrument(stream, cpu, "bench")
    cpu.run(stream)
    if obs is not None:
        obs.finish_run(cpu, "bench")
    cpu.finalize()


def _best_of(fn, rounds: int = ROUNDS) -> float:
    """Minimum wall time over ``rounds`` — the standard noise filter."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead_under_5_percent():
    """The acceptance bound: obs constructed but all-off ≈ no obs at all.

    Timings are interleaved (plain, disabled, plain, disabled, ...) so a
    machine-load drift hits both arms equally.
    """
    _run_plain()  # warm caches / imports outside the timed region
    plain_best = float("inf")
    disabled_best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_plain()
        plain_best = min(plain_best, time.perf_counter() - start)

        start = time.perf_counter()
        _run_with_obs(Observability())  # all pillars off: the null sink
        disabled_best = min(disabled_best, time.perf_counter() - start)
    overhead = disabled_best / plain_best - 1.0
    print(
        f"\nplain {plain_best * 1e3:.1f} ms, disabled-obs {disabled_best * 1e3:.1f} ms, "
        f"overhead {overhead:+.2%} (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )
    _record(
        plain_ms=plain_best * 1e3,
        disabled_obs_ms=disabled_best * 1e3,
        disabled_obs_overhead=overhead,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled observability costs {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%}); the null-sink fast path regressed"
    )


def _run_workload_path(progress=None) -> None:
    """One pair-shaped run through ``run_workload`` — the code path the
    campaign service and ``run_campaign`` drive, where the event bus and
    the progress callback are threaded (or, here, not)."""
    run_workload(
        ALL_WORKLOADS["memcached"].config(),
        mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=256)),
        warmup_requests=5,
        measured_requests=REQUESTS,
        progress=progress,
    )


def test_disabled_event_bus_overhead_under_5_percent():
    """The telemetry-plane gate: ``run_workload`` with no progress
    callback (hence no ``_counted_stream`` wrapper, no bus emissions —
    exactly what a bus-less ``run_campaign`` drives) must cost within 5%
    of re-running itself.  Interleaved arms, best-of like the obs gate;
    the baseline arm is the same function so the only difference is the
    gating code's disabled branch.
    """
    _run_workload_path()  # warm-up
    baseline_best = float("inf")
    disabled_best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_workload_path(progress=None)
        disabled_best = min(disabled_best, time.perf_counter() - start)

        start = time.perf_counter()
        _run_workload_path()
        baseline_best = min(baseline_best, time.perf_counter() - start)
    overhead = disabled_best / baseline_best - 1.0
    print(
        f"\nbaseline {baseline_best * 1e3:.1f} ms, no-bus {disabled_best * 1e3:.1f} ms, "
        f"overhead {overhead:+.2%} (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )
    _record(
        workload_path_ms=baseline_best * 1e3,
        disabled_bus_overhead=overhead,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"bus-disabled run_workload costs {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%}); the null-sink contract regressed"
    )


def test_enabled_event_bus_cost_is_reported():
    """Informational: progress counting + bus emission per retired batch.

    The progress callback batches (``PROGRESS_EVERY`` events per call),
    so even the enabled path must stay cheap — bounded here at 2x as a
    sanity rail, recorded exactly in the JSON output.
    """
    bus = EventBus(capacity=4096)

    def progress(n: int, _bus=bus) -> None:
        _bus.emit("progress", "batch retired", events_done=n)

    baseline = _best_of(_run_workload_path)
    enabled = _best_of(lambda: _run_workload_path(progress=progress))
    ratio = enabled / baseline
    print(
        f"\nbaseline {baseline * 1e3:.1f} ms, bus+progress {enabled * 1e3:.1f} ms, "
        f"x{ratio:.3f} ({bus.last_seq} event(s) emitted)"
    )
    _record(
        enabled_bus_ms=enabled * 1e3,
        enabled_bus_ratio=ratio,
    )
    assert ratio < 2.0


def test_enabled_observability_cost_is_reported():
    """Informational: what full tracing + sampling + profiling costs.

    No hard bound — enabled observability is allowed to be expensive —
    but it must complete and stay within an order of magnitude so nobody
    accidentally puts sampling inside the CPU's retire loop.
    """
    plain = _best_of(_run_plain)
    enabled = _best_of(
        lambda: _run_with_obs(
            Observability(
                trace_out="unused.trace.json",  # never exported here
                metrics_out="unused.jsonl",
                sample_every=2000,
                profile=True,
            )
        )
    )
    ratio = enabled / plain
    print(f"\nplain {plain * 1e3:.1f} ms, enabled-obs {enabled * 1e3:.1f} ms, x{ratio:.2f}")
    _record(enabled_obs_ms=enabled * 1e3, enabled_obs_ratio=ratio)
    assert ratio < 10.0
