"""Overhead budget for the observability layer.

The layer's contract is a *null-sink fast path*: with no tracer, no
metrics and no profiler configured, the simulator must run the exact
code it ran before the layer existed — no wrapper generators, no hook
dispatch, no per-event flag checks.  This benchmark holds that contract
to <5% measured slowdown, and reports (without asserting) what the
fully-enabled configuration costs.

Run with ``pytest benchmarks/bench_obs.py -q``.
"""

from __future__ import annotations

import time

from repro.core import MechanismConfig, TrampolineSkipMechanism
from repro.obs import Observability
from repro.uarch import CPU
from repro.workloads import ALL_WORKLOADS, Workload

REQUESTS = 40
ROUNDS = 5
#: Disabled observability must stay within this fraction of the plain run.
MAX_DISABLED_OVERHEAD = 0.05


def _run_plain() -> None:
    wl = Workload(ALL_WORKLOADS["memcached"].config())
    cpu = CPU(mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=256)))
    cpu.run(wl.trace(REQUESTS))
    cpu.finalize()


def _run_with_obs(obs: Observability | None) -> None:
    wl = Workload(ALL_WORKLOADS["memcached"].config())
    cpu = CPU(
        mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=256)),
        hooks=obs.hooks() if obs is not None else None,
    )
    stream = wl.trace(REQUESTS)
    if obs is not None:
        obs.attach_workload(wl)
        stream = obs.instrument(stream, cpu, "bench")
    cpu.run(stream)
    if obs is not None:
        obs.finish_run(cpu, "bench")
    cpu.finalize()


def _best_of(fn, rounds: int = ROUNDS) -> float:
    """Minimum wall time over ``rounds`` — the standard noise filter."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead_under_5_percent():
    """The acceptance bound: obs constructed but all-off ≈ no obs at all.

    Timings are interleaved (plain, disabled, plain, disabled, ...) so a
    machine-load drift hits both arms equally.
    """
    _run_plain()  # warm caches / imports outside the timed region
    plain_best = float("inf")
    disabled_best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_plain()
        plain_best = min(plain_best, time.perf_counter() - start)

        start = time.perf_counter()
        _run_with_obs(Observability())  # all pillars off: the null sink
        disabled_best = min(disabled_best, time.perf_counter() - start)
    overhead = disabled_best / plain_best - 1.0
    print(
        f"\nplain {plain_best * 1e3:.1f} ms, disabled-obs {disabled_best * 1e3:.1f} ms, "
        f"overhead {overhead:+.2%} (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled observability costs {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%}); the null-sink fast path regressed"
    )


def test_enabled_observability_cost_is_reported():
    """Informational: what full tracing + sampling + profiling costs.

    No hard bound — enabled observability is allowed to be expensive —
    but it must complete and stay within an order of magnitude so nobody
    accidentally puts sampling inside the CPU's retire loop.
    """
    plain = _best_of(_run_plain)
    enabled = _best_of(
        lambda: _run_with_obs(
            Observability(
                trace_out="unused.trace.json",  # never exported here
                metrics_out="unused.jsonl",
                sample_every=2000,
                profile=True,
            )
        )
    )
    ratio = enabled / plain
    print(f"\nplain {plain * 1e3:.1f} ms, enabled-obs {enabled * 1e3:.1f} ms, x{ratio:.2f}")
    assert ratio < 10.0
