"""Benchmark: regenerate the paper's Figure 6 — Apache SPECweb response-time CDFs."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig6(benchmark, bench_scale):
    """Reproduce Figure 6 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "fig6", bench_scale)
