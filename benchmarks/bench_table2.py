"""Benchmark: regenerate the paper's Table 2 — trampoline instructions per kilo-instruction across the four workloads."""

from benchmarks.conftest import run_experiment_benchmark


def test_table2(benchmark, bench_scale):
    """Reproduce Table 2 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "table2", bench_scale)
