"""Benchmark: regenerate the paper's Section 5.5 — memory waste of software patching vs the hardware."""

from benchmarks.conftest import run_experiment_benchmark


def test_memsave(benchmark, bench_scale):
    """Reproduce Section 5.5 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "memsave", bench_scale)
