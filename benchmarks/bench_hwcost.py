"""Benchmark: regenerate the paper's Section 5.3 — ABTB storage cost."""

from benchmarks.conftest import run_experiment_benchmark


def test_hwcost(benchmark, bench_scale):
    """Reproduce Section 5.3 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "hwcost", bench_scale)
