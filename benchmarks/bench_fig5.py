"""Benchmark: regenerate the paper's Figure 5 — percent of trampolines skipped vs ABTB size."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig5(benchmark, bench_scale):
    """Reproduce Figure 5 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "fig5", bench_scale)
