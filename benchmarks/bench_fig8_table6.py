"""Benchmark: regenerate the paper's Figure 8 + Table 6 — MySQL latency CDFs and percentiles."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig8_table6(benchmark, bench_scale):
    """Reproduce Figure 8 + Table 6 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "fig8_table6", bench_scale)
