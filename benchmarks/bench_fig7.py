"""Benchmark: regenerate the paper's Figure 7 — Memcached GET/SET processing-time histograms."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig7(benchmark, bench_scale):
    """Reproduce Figure 7 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "fig7", bench_scale)
