"""Benchmark: regenerate the paper's Figure 4 — trampoline rank/frequency curves."""

from benchmarks.conftest import run_experiment_benchmark


def test_fig4(benchmark, bench_scale):
    """Reproduce Figure 4 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "fig4", bench_scale)
