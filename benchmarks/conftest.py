"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure: it runs the registered
experiment, prints the paper-style rows, persists them under
``benchmarks/output/``, and asserts the shape checks.

Scale defaults to ``smoke`` (seconds per experiment); set
``REPRO_BENCH_SCALE=paper`` for the longer preset used to produce
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.report import Report
from repro.experiments import get
from repro.experiments.scale import PAPER, SMOKE, Scale

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    """The scale preset benchmarks run at."""
    return PAPER if os.environ.get("REPRO_BENCH_SCALE") == "paper" else SMOKE


def run_experiment_benchmark(benchmark, experiment_id: str, scale: Scale) -> Report:
    """Run one experiment under pytest-benchmark and persist its report."""
    experiment = get(experiment_id)
    report = benchmark.pedantic(lambda: experiment.run(scale), rounds=1, iterations=1)
    rendered = report.render()
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
    print()
    print(rendered)
    failed = [name for name, ok in report.shape_checks.items() if not ok]
    assert not failed, f"{experiment_id}: failed shape checks: {failed}"
    return report
