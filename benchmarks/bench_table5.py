"""Benchmark: regenerate the paper's Table 5 — Firefox Peacekeeper scores."""

from benchmarks.conftest import run_experiment_benchmark


def test_table5(benchmark, bench_scale):
    """Reproduce Table 5 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "table5", bench_scale)
