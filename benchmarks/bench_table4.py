"""Benchmark: regenerate the paper's Table 4 — performance-counter PKI, base vs enhanced."""

from benchmarks.conftest import run_experiment_benchmark


def test_table4(benchmark, bench_scale):
    """Reproduce Table 4 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "table4", bench_scale)
