"""Benchmark: regenerate the paper's Table 3 — distinct trampolines exercised per workload."""

from benchmarks.conftest import run_experiment_benchmark


def test_table3(benchmark, bench_scale):
    """Reproduce Table 3 and assert its shape checks."""
    run_experiment_benchmark(benchmark, "table3", bench_scale)
